"""Global configuration objects for the Darwin reproduction.

The paper exposes a handful of knobs (Section 3 and Appendix D):

* the oracle precision threshold used when simulating annotators (0.8),
* the HybridSearch switching parameter ``tau`` (default 5),
* the UniversalSearch benefit-per-instance cutoff (0.5),
* the number of candidate heuristics generated per iteration (10K),
* the maximum derivation-sketch depth (10),
* classifier training epochs.

:class:`DarwinConfig` groups these so that experiments can sweep them without
threading a dozen keyword arguments through every component.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from .errors import ConfigurationError


def _registry_names(registry_attr: str) -> Optional[Tuple[str, ...]]:
    """Names registered in one of the engine registries, or None when the
    registry module is not loaded yet.

    Deliberately reads ``sys.modules`` instead of importing: the registry
    module imports the component modules (grammars, classifiers, datasets,
    ...), so importing it from here would both bolt that whole tree onto
    ``import repro.config`` and create a config→engine→components import
    chain that is one careless ``from repro.config import DEFAULT_CONFIG``
    away from a cycle. In practice ``repro/__init__`` loads the registry
    right after this module, so every user-constructed config is validated;
    only the module-level ``DEFAULT_CONFIG`` (all-default, known-good names)
    skips the registry check during bootstrap.
    """
    import sys

    root_package = __name__.rsplit(".", 1)[0]
    module = sys.modules.get(f"{root_package}.engine.registry")
    if module is None:
        return None
    return getattr(module, registry_attr).names()


@dataclass(frozen=True)
class ClassifierConfig:
    """Hyper-parameters of the benefit-estimation classifier.

    Attributes:
        model: One of ``"logistic"``, ``"mlp"`` or ``"cnn"``. The paper uses a
            Kim-style CNN; the cheaper models are provided because benefit
            estimation only needs rough probability rankings.
        epochs: Number of passes over the (small) training set per retrain.
        learning_rate: SGD/Adam step size.
        hidden_dim: Hidden width for the MLP / dense head of the CNN.
        embedding_dim: Dimensionality of word embeddings fed to the model.
        negative_sample_ratio: How many random "presumed negative" sentences to
            sample per known positive when forming a training set (Section 3.3).
        batch_size: Mini-batch size.
        l2: L2 regularisation strength.
        incremental_scoring: After a retrain, only re-score sentences whose
            previous score exceeded the trainer's confidence floor (with a full
            refresh every few retrains) — the paper's Section 3.7 optimization.
            Off by default so experiment reruns stay exact.
        seed: RNG seed for weight init and negative sampling.
    """

    model: str = "logistic"
    epochs: int = 60
    learning_rate: float = 0.5
    hidden_dim: int = 32
    embedding_dim: int = 50
    negative_sample_ratio: float = 5.0
    batch_size: int = 32
    l2: float = 1e-4
    incremental_scoring: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        known_models = _registry_names("CLASSIFIERS") or ("logistic", "mlp", "cnn")
        if self.model not in known_models:
            raise ConfigurationError(f"unknown classifier model: {self.model!r}")
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.negative_sample_ratio <= 0:
            raise ConfigurationError("negative_sample_ratio must be positive")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of this config (checkpoint manifests)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "ClassifierConfig":
        """Rebuild a config from :meth:`as_dict` output / a plain JSON dict."""
        try:
            return cls(**dict(mapping))
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(f"bad classifier config: {exc}") from exc


@dataclass(frozen=True)
class IndexConfig:
    """Configuration of the corpus index's coverage storage.

    Attributes:
        coverage_backend: ``"memory"`` (interned coverage arrays on the heap,
            the default) or ``"arena"`` (arrays spilled to a memory-mapped
            :class:`~repro.index.arena.CoverageArena` file, so corpora whose
            coverage columns exceed RAM stay queryable through unchanged
            ``CoverageView`` handles).
        arena_path: Arena file location for the arena backend. ``None`` uses
            an unlinked-on-exit temporary file — fine for one-shot runs, but
            checkpoints taken over a temp arena cannot be resumed after the
            process exits; pass a real path for durable runs.
        bitset_cache_bytes: LRU byte budget for the packed-bitset fast path
            on the arena backend (resident memory for coverage stays on the
            order of this budget). ``0`` disables bitsets entirely.
    """

    coverage_backend: str = "memory"
    arena_path: Optional[str] = None
    bitset_cache_bytes: int = 8 << 20

    def __post_init__(self) -> None:
        if self.coverage_backend not in ("memory", "arena"):
            raise ConfigurationError(
                f"unknown coverage_backend: {self.coverage_backend!r} "
                f"(expected 'memory' or 'arena')"
            )
        if self.arena_path is not None and not isinstance(self.arena_path, str):
            raise ConfigurationError("arena_path must be a string path or None")
        if self.bitset_cache_bytes < 0:
            raise ConfigurationError("bitset_cache_bytes must be non-negative")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of this config (checkpoint manifests)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "IndexConfig":
        """Rebuild a config from :meth:`as_dict` output / a plain JSON dict."""
        try:
            return cls(**dict(mapping))
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(f"bad index config: {exc}") from exc


@dataclass(frozen=True)
class DarwinConfig:
    """Top-level configuration for a Darwin run (Algorithm 1).

    Attributes:
        budget: Maximum number of oracle queries (``b`` in Problem 1).
        traversal: ``"local"``, ``"universal"`` or ``"hybrid"`` (Sections 3.4-3.6).
        tau: HybridSearch switching threshold (unsuccessful attempts before the
            strategy toggles; default 5 per Section 3.6).
        benefit_cutoff: UniversalSearch drops candidates whose benefit per
            instance is below this value (0.5 per Section 3.5).
        num_candidates: Number of candidate heuristics generated per hierarchy
            build (10K in the paper's experiments; smaller defaults keep tests
            fast).
        max_sketch_depth: Maximum number of derivation rules applied when
            enumerating sketches (10 in the paper).
        max_phrase_len: Maximum n-gram length for TokensRegex heuristics.
        min_coverage: Candidates covering fewer sentences than this are pruned.
        oracle_precision_threshold: The simulated oracle answers YES iff the
            candidate's precision is at least this value (0.8 in Section 4.1).
        oracle_sample_size: Number of example sentences shown per query.
        retrain_every: Retrain the classifier after this many accepted rules.
        hierarchy_refresh: ``"incremental"`` (default) re-expands only the
            index nodes whose overlap with the newly discovered positives
            changed after each accepted rule; ``"full"`` regenerates every
            candidate from scratch (the pre-columnar behaviour, kept for
            experiments that need exact Algorithm 2 reruns).
        grammars: Registry names of the heuristic grammars to search over
            (see :data:`repro.engine.registry.GRAMMARS`); used by
            :class:`~repro.engine.DarwinEngine` to build grammars
            declaratively. ``Darwin`` callers passing grammar instances
            directly bypass this field.
        oracle: Registry name of the oracle built by
            :meth:`repro.engine.DarwinEngine.build_oracle`
            (see :data:`repro.engine.registry.ORACLES`).
        classifier: Nested :class:`ClassifierConfig` (its ``model`` field is a
            :data:`repro.engine.registry.CLASSIFIERS` name).
        index: Nested :class:`IndexConfig` selecting where interned coverage
            columns live (``memory`` or the memory-mapped ``arena`` backend).
        seed: Seed for all stochastic tie-breaking inside the search.
    """

    budget: int = 100
    traversal: str = "hybrid"
    tau: int = 5
    benefit_cutoff: float = 0.5
    num_candidates: int = 2000
    max_sketch_depth: int = 10
    max_phrase_len: int = 4
    min_coverage: int = 2
    oracle_precision_threshold: float = 0.8
    oracle_sample_size: int = 5
    retrain_every: int = 1
    hierarchy_refresh: str = "incremental"
    grammars: Tuple[str, ...] = ("tokensregex",)
    oracle: str = "ground_truth"
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.grammars, tuple):
            object.__setattr__(self, "grammars", tuple(self.grammars))
        if not self.grammars or not all(
            isinstance(name, str) and name for name in self.grammars
        ):
            raise ConfigurationError(
                "grammars must be a non-empty sequence of registry names"
            )
        if len(set(self.grammars)) != len(self.grammars):
            raise ConfigurationError("grammar names must be unique")
        if not isinstance(self.oracle, str) or not self.oracle:
            raise ConfigurationError("oracle must be a registry name")
        known_grammars = _registry_names("GRAMMARS")
        if known_grammars is not None:
            for name in self.grammars:
                if name not in known_grammars:
                    raise ConfigurationError(
                        f"unknown grammar {name!r}; registered: "
                        f"{', '.join(known_grammars)}"
                    )
        known_oracles = _registry_names("ORACLES")
        if known_oracles is not None and self.oracle not in known_oracles:
            raise ConfigurationError(
                f"unknown oracle {self.oracle!r}; registered: "
                f"{', '.join(known_oracles)}"
            )
        if self.budget <= 0:
            raise ConfigurationError("budget must be positive")
        known_traversals = _registry_names("TRAVERSALS") or (
            "local", "universal", "hybrid"
        )
        if self.traversal not in known_traversals:
            raise ConfigurationError(f"unknown traversal: {self.traversal!r}")
        if self.tau <= 0:
            raise ConfigurationError("tau must be positive")
        if not 0.0 <= self.benefit_cutoff <= 1.0:
            raise ConfigurationError("benefit_cutoff must be in [0, 1]")
        if self.num_candidates <= 0:
            raise ConfigurationError("num_candidates must be positive")
        if self.max_sketch_depth <= 0:
            raise ConfigurationError("max_sketch_depth must be positive")
        if self.max_phrase_len <= 0:
            raise ConfigurationError("max_phrase_len must be positive")
        if self.min_coverage < 1:
            raise ConfigurationError("min_coverage must be at least 1")
        if not 0.0 < self.oracle_precision_threshold <= 1.0:
            raise ConfigurationError("oracle_precision_threshold must be in (0, 1]")
        if self.oracle_sample_size <= 0:
            raise ConfigurationError("oracle_sample_size must be positive")
        if self.retrain_every <= 0:
            raise ConfigurationError("retrain_every must be positive")
        if self.hierarchy_refresh not in {"full", "incremental"}:
            raise ConfigurationError(
                f"unknown hierarchy_refresh: {self.hierarchy_refresh!r}"
            )

    def with_overrides(self, **overrides: Any) -> "DarwinConfig":
        """Return a copy of this config with ``overrides`` applied.

        Nested classifier/index options may be overridden by passing a mapping
        under the ``classifier``/``index`` key or the config instance itself.
        """
        classifier = overrides.pop("classifier", None)
        if isinstance(classifier, Mapping):
            overrides["classifier"] = replace(self.classifier, **dict(classifier))
        elif isinstance(classifier, ClassifierConfig):
            overrides["classifier"] = classifier
        elif classifier is not None:
            raise ConfigurationError(
                "classifier override must be a mapping or ClassifierConfig"
            )
        index = overrides.pop("index", None)
        if isinstance(index, Mapping):
            overrides["index"] = replace(self.index, **dict(index))
        elif isinstance(index, IndexConfig):
            overrides["index"] = index
        elif index is not None:
            raise ConfigurationError(
                "index override must be a mapping or IndexConfig"
            )
        try:
            return replace(self, **overrides)
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(str(exc)) from exc

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of this config, nested classifier included."""
        record = asdict(self)
        record["grammars"] = list(self.grammars)
        return record

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "DarwinConfig":
        """Rebuild a config from :meth:`as_dict` output / a plain JSON dict.

        The nested ``classifier`` entry may be a mapping or a
        :class:`ClassifierConfig`; ``grammars`` may be any sequence of names.
        Unknown keys raise :class:`~repro.errors.ConfigurationError`.
        """
        record = dict(mapping)
        classifier = record.get("classifier")
        if isinstance(classifier, Mapping):
            record["classifier"] = ClassifierConfig.from_dict(classifier)
        index = record.get("index")
        if isinstance(index, Mapping):
            record["index"] = IndexConfig.from_dict(index)
        grammars = record.get("grammars")
        if grammars is not None and not isinstance(grammars, tuple):
            record["grammars"] = tuple(grammars)
        try:
            return cls(**record)
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(f"bad darwin config: {exc}") from exc


@dataclass(frozen=True)
class CrowdConfig:
    """Configuration for a concurrent multi-annotator crowd session (§4.3).

    Attributes:
        num_annotators: Number of concurrent annotator sessions ``K``.
        redundancy: Votes collected per question before committing; the answer
            is the majority vote, and a tie counts as NO (same strict-majority
            rule as :class:`~repro.core.oracle.MajorityVoteOracle`).
        batch_size: Number of committed answers accumulated before the
            classifier retrain + hierarchy refresh are applied. Accepted rules
            join the rule set immediately; only the expensive model updates are
            batched (the Berkholz-style deferred-maintenance strategy). This
            also bounds how many distinct questions may be in flight at once:
            with ``batch_size=1`` the coordinator is sequentially consistent
            with the serial Darwin loop.
        budget: Total committed questions; ``None`` falls back to the Darwin
            configuration's ``budget``.
        max_in_flight: Overrides the in-flight question bound (defaults to
            ``batch_size``).
        annotator_latency: Mean simulated think time per answer in seconds
            (used by the asyncio runner; 0 disables sleeping).
        latency_jitter: Uniform jitter applied to the latency, as a fraction
            of ``annotator_latency``.
        label_noise: Per-annotator probability of flipping an answer in the
            simulated crowd (``repro.crowd.simulated_annotators``).
        seed: Seed for the per-annotator RNGs (latency jitter and noise).
    """

    num_annotators: int = 4
    redundancy: int = 1
    batch_size: int = 8
    budget: Optional[int] = None
    max_in_flight: Optional[int] = None
    annotator_latency: float = 0.02
    latency_jitter: float = 0.5
    label_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_annotators < 1:
            raise ConfigurationError("num_annotators must be at least 1")
        if self.redundancy < 1:
            raise ConfigurationError("redundancy must be at least 1")
        if self.redundancy > self.num_annotators:
            raise ConfigurationError(
                "redundancy cannot exceed num_annotators: each vote on a "
                "question must come from a distinct annotator"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if self.budget is not None and self.budget <= 0:
            raise ConfigurationError("budget must be positive when given")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be at least 1 when given")
        if self.annotator_latency < 0:
            raise ConfigurationError("annotator_latency must be non-negative")
        if not 0.0 <= self.latency_jitter <= 1.0:
            raise ConfigurationError("latency_jitter must be in [0, 1]")
        if not 0.0 <= self.label_noise <= 1.0:
            raise ConfigurationError("label_noise must be in [0, 1]")

    @property
    def in_flight_limit(self) -> int:
        """Maximum distinct questions dispatched but not yet committed."""
        return self.max_in_flight if self.max_in_flight is not None else self.batch_size

    def with_overrides(self, **overrides: Any) -> "CrowdConfig":
        """Return a copy of this config with ``overrides`` applied."""
        try:
            return replace(self, **overrides)
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(str(exc)) from exc

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of this config (checkpoint manifests)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "CrowdConfig":
        """Rebuild a config from :meth:`as_dict` output / a plain JSON dict."""
        try:
            return cls(**dict(mapping))
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(f"bad crowd config: {exc}") from exc


@dataclass(frozen=True)
class GatewayConfig:
    """Configuration of the HTTP gateway (``repro serve-http``).

    Attributes:
        host: Interface to bind. The default is loopback-only; bind
            ``0.0.0.0`` explicitly to serve external traffic.
        port: TCP port; ``0`` asks the OS for an ephemeral port (the bound
            port is reported on stdout and in the ``--ready-file``).
        backend: HTTP server backend registry name (``"stdlib"`` ships;
            ``"starlette"`` is recognised and used when the package is
            importable, without ever being a hard dependency).
        queue_depth: Bound of each tenant's admission queue — jobs admitted
            but not yet finished. A full queue answers 429 + ``Retry-After``.
        deadline_ms: Default per-request deadline. Time a job may spend
            queued before it is cancelled with a 504; requests may lower or
            raise it per call via the ``deadline_ms`` body field.
        retry_after_s: ``Retry-After`` value (seconds) sent with 429/503.
        auth_tokens_path: JSON file mapping bearer tokens to tenant
            entitlements (see :class:`repro.gateway.auth.TokenAuthenticator`);
            ``None`` disables authentication.
        checkpoint_dir: Directory for client-requested checkpoints and the
            final drain checkpoints (created on demand).
        allow_debug_ops: Expose ``POST /tenants/{id}/debug/sleep``, which
            occupies the tenant worker for a given duration. Only for tests
            and load harnesses that need a deterministically full queue.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    backend: str = "stdlib"
    queue_depth: int = 32
    deadline_ms: float = 10_000.0
    retry_after_s: int = 1
    auth_tokens_path: Optional[str] = None
    checkpoint_dir: str = "gateway-checkpoints"
    allow_debug_ops: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError("host must be a non-empty string")
        if not isinstance(self.port, int) or isinstance(self.port, bool):
            raise ConfigurationError("port must be an integer")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must be in [0, 65535] (0 = ephemeral), got {self.port}"
            )
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError("backend must be a registry name")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be at least 1")
        if self.deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be positive")
        if self.retry_after_s < 1:
            raise ConfigurationError("retry_after_s must be at least 1")
        if not isinstance(self.checkpoint_dir, str) or not self.checkpoint_dir:
            raise ConfigurationError("checkpoint_dir must be a non-empty path")

    def with_overrides(self, **overrides: Any) -> "GatewayConfig":
        """Return a copy of this config with ``overrides`` applied."""
        try:
            return replace(self, **overrides)
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(str(exc)) from exc

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of this config (checkpoint manifests)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "GatewayConfig":
        """Rebuild a config from :meth:`as_dict` output / a plain JSON dict."""
        try:
            return cls(**dict(mapping))
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(f"bad gateway config: {exc}") from exc


@dataclass(frozen=True)
class FleetConfig:
    """Configuration of the cross-process serving fleet (``repro.fleet``).

    Attributes:
        workers: Number of worker processes. Each worker reopens the shared
            :class:`~repro.index.arena.CoverageArena` file read-only by path
            after spawn and hosts a partition of the tenants.
        start_method: ``multiprocessing`` start method. ``"fork"`` (default)
            lets workers inherit the built index/corpus substrate
            copy-on-write — only per-tenant state is private per process;
            ``"spawn"`` gives fully independent interpreters that rebuild
            the substrate from the supervisor's substrate checkpoint (more
            memory, maximal isolation).
        workdir: Directory for the arena file, the substrate checkpoint, and
            worker auto-checkpoints. ``None`` uses a temporary directory
            removed when the supervisor closes.
        checkpoint_every_commits: Auto-checkpoint a tenant's overlay state
            after this many committed answers — the resume point after a
            worker crash. ``0`` disables auto-checkpoints (crashed workers
            respawn their tenants from the initial seeds).
        heartbeat_s: Liveness-monitor poll interval; a dead worker is
            respawned and its tenants restored from their last checkpoints.
        call_timeout_s: Upper bound one supervisor→worker RPC may take
            before the worker is declared wedged (kill + respawn).
        shared_feature_slab: Back the workers' shared feature cache with one
            ``multiprocessing.shared_memory`` vector slab, so each sentence's
            feature vector is computed once per *machine* rather than once
            per process.
    """

    workers: int = 4
    start_method: str = "fork"
    workdir: Optional[str] = None
    checkpoint_every_commits: int = 8
    heartbeat_s: float = 1.0
    call_timeout_s: float = 120.0
    shared_feature_slab: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ConfigurationError("workers must be an integer")
        if self.workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigurationError(
                f"start_method must be one of fork/spawn/forkserver, got "
                f"{self.start_method!r}"
            )
        if self.checkpoint_every_commits < 0:
            raise ConfigurationError(
                "checkpoint_every_commits must be non-negative (0 disables)"
            )
        if self.heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if self.call_timeout_s <= 0:
            raise ConfigurationError("call_timeout_s must be positive")

    def with_overrides(self, **overrides: Any) -> "FleetConfig":
        """Return a copy of this config with ``overrides`` applied."""
        try:
            return replace(self, **overrides)
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(str(exc)) from exc

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of this config (checkpoint manifests)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "FleetConfig":
        """Rebuild a config from :meth:`as_dict` output / a plain JSON dict."""
        try:
            return cls(**dict(mapping))
        except TypeError as exc:  # unknown field name
            raise ConfigurationError(f"bad fleet config: {exc}") from exc


DEFAULT_CONFIG = DarwinConfig()
"""A shared default configuration used when callers do not supply one."""
