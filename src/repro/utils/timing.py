"""Lightweight timing helpers used by the efficiency experiments."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Example:
        >>> watch = Stopwatch()
        >>> with watch.measure("index"):
        ...     _ = sum(range(1000))
        >>> watch.total("index") >= 0.0
        True
    """

    durations: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never measured)."""
        return self.durations.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per measurement under ``name`` (0.0 if never measured)."""
        count = self.counts.get(name, 0)
        if count == 0:
            return 0.0
        return self.durations[name] / count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{"total", "count", "mean"}`` blocks (a fresh copy).

        Returns totals *and* counts so consumers (efficiency experiments,
        bench payloads, `DarwinResult.timings`) stop recomputing means and
        stop losing how many times a phase ran.
        """
        return {
            name: {
                "total": total,
                "count": float(self.counts.get(name, 0)),
                "mean": total / self.counts[name] if self.counts.get(name) else 0.0,
            }
            for name, total in self.durations.items()
        }


@contextmanager
def timed() -> Iterator[list]:
    """Context manager yielding a single-element list receiving elapsed seconds.

    Example:
        >>> with timed() as box:
        ...     _ = sum(range(10))
        >>> box[0] >= 0.0
        True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
