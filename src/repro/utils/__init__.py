"""Shared utilities: deterministic RNG helpers, timing, and validation."""

from .rng import derive_rng, derive_seed, stable_hash
from .timing import Stopwatch, timed
from .validation import require, require_probability, require_positive

__all__ = [
    "derive_rng",
    "derive_seed",
    "stable_hash",
    "Stopwatch",
    "timed",
    "require",
    "require_probability",
    "require_positive",
]
