"""Deterministic random-number helpers.

Experiments in the reproduction must be repeatable: every stochastic component
(negative sampling, tie-breaking, dataset generation, noisy oracles) receives a
``numpy.random.Generator`` derived from an explicit seed plus a descriptive
namespace string. Deriving sub-seeds through :func:`stable_hash` keeps the
streams independent without relying on Python's randomized ``hash``.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """Return a stable 64-bit hash of ``parts``.

    Unlike the builtin ``hash``, the value does not change across interpreter
    runs, which makes derived seeds reproducible.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_seed(base_seed: int, *namespace: object) -> int:
    """Derive an independent sub-seed from ``base_seed`` and a namespace."""
    return stable_hash(int(base_seed), *namespace) % (2**32)


def derive_rng(base_seed: int, *namespace: object) -> np.random.Generator:
    """Return a ``numpy`` Generator seeded from ``base_seed`` and a namespace."""
    return np.random.default_rng(derive_seed(base_seed, *namespace))
