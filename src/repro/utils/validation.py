"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value`` to be strictly positive."""
    if value is None or value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    if value is None or not 0.0 <= float(value) <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def ensure_type(value: Any, expected: type, name: str) -> Any:
    """Require ``value`` to be an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        raise ConfigurationError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
    return value
