"""The tenant pool: shared immutable substrate, per-tenant engines.

``TenantPool`` owns everything that is corpus-wide and immutable — the sealed
:class:`~repro.index.CorpusIndex`, its coverage columns (frozen read-only
when arena-backed, content-digest verified on attach), and one
:class:`~repro.classifier.features.SharedFeatureCache` — and hands out
:class:`Tenant` handles whose engines share all of it by reference:

* the tenant's index is a read-only *view* of the shared index (same node
  dict, same CSR inverted map, zero copies) whose ``store`` is a per-tenant
  :class:`~repro.index.overlay.OverlayCoverageStore`, so anything the tenant
  interns lands in its own id-space partition;
* the tenant's featurizer is a handle over the pool's fitted embeddings and
  shared feature cache, so no sentence is ever featurized twice across
  tenants;
* everything mutable — rule set, hierarchy, traversal pools, classifier
  scores/weights, RNG streams, history — is built fresh per tenant by
  :class:`~repro.engine.DarwinEngine`, which is what makes each tenant's run
  question-for-question identical to a solo engine with the same config.

Lifecycle: the pool is a context manager. ``__exit__`` closes tenants first
and the shared store last (via :class:`contextlib.ExitStack`), releasing the
arena's memory maps before anyone deletes the file — the ordering
Windows-style strict-unlink filesystems require.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any, Dict, List, Mapping, Optional

from ..classifier.features import SentenceFeaturizer, SharedFeatureCache
from ..config import CrowdConfig, DarwinConfig, DEFAULT_CONFIG
from ..engine.engine import DarwinEngine
from ..errors import ConfigurationError
from ..index.arena import ArenaConfig
from ..index.overlay import OverlayCoverageStore
from ..index.trie_index import CorpusIndex
from ..obs import get_registry
from ..text.corpus import Corpus


class SharedIndexView(CorpusIndex):
    """A per-tenant facade over one shared, sealed :class:`CorpusIndex`.

    Shares the node dict, grammar instances, and CSR inverted map by
    reference; only ``store`` differs (the tenant's overlay). Mutating the
    shared structure through a view is a bug by construction, so every
    construction-time mutator raises.
    """

    @classmethod
    def over(cls, shared: CorpusIndex, store: OverlayCoverageStore) -> "SharedIndexView":
        if not shared.sealed:
            raise ConfigurationError(
                "tenant views require a sealed index; call seal() first"
            )
        view = cls.__new__(cls)
        view.__dict__.update(shared.__dict__)
        view.store = store
        return view

    def _refuse(self, operation: str) -> None:
        raise ConfigurationError(
            f"cannot {operation} a shared tenant index view: the underlying "
            f"index is read-only while a TenantPool serves it"
        )

    def add_sketch(self, sketch) -> None:  # pragma: no cover - guard
        self._refuse("add sketches to")

    def merge(self, other, finalize: bool = True):  # pragma: no cover - guard
        self._refuse("merge into")

    def prune(self, min_coverage: int) -> int:  # pragma: no cover - guard
        self._refuse("prune")

    def _unseal(self) -> None:  # pragma: no cover - guard
        self._refuse("unseal")


class Tenant:
    """One tenant's handle: an engine plus its copy-on-write coverage store.

    Obtained from :meth:`TenantPool.spawn`; all heavyweight state is shared
    with the pool, so spawning a tenant is cheap (grammar construction plus
    an empty overlay).
    """

    def __init__(
        self, pool: "TenantPool", tenant_id: str, engine: DarwinEngine,
        store: OverlayCoverageStore,
    ) -> None:
        self.pool = pool
        self.tenant_id = tenant_id
        self.engine = engine
        self.store = store
        self._coordinator = None

    @property
    def darwin(self):
        """The tenant's Darwin core."""
        return self.engine.darwin

    @property
    def started(self) -> bool:
        """True once this tenant's session has been seeded."""
        return self.engine.started

    def start(self, **seeds: Any) -> "Tenant":
        """Seed the tenant's session (defaults to the engine's seeds)."""
        self.engine.start(**seeds)
        return self

    def run(self, **kwargs: Any):
        """Drive this tenant's loop solo (see :meth:`DarwinEngine.run`)."""
        return self.engine.run(**kwargs)

    def session(self, **kwargs: Any):
        """A single-annotator session over this tenant's engine."""
        return self.engine.session(**kwargs)

    def crowd(self, crowd_config: Optional[CrowdConfig] = None):
        """A crowd coordinator over this tenant's engine (started tenants)."""
        return self.engine.crowd(crowd_config)

    def coordinator(
        self, crowd_config: Optional[CrowdConfig] = None, fresh: bool = False
    ):
        """This tenant's long-lived crowd coordinator, created on first use.

        Unlike :meth:`crowd` (a new coordinator per call), the handle is
        cached so stateless frontends — the HTTP gateway above all — route
        every request for this tenant to the same ticket/vote state. Pass
        ``fresh=True`` to drop the cached coordinator and build a new one
        (after a checkpoint restore, or per serve run). The coordinator's
        metric series carry this tenant's id.
        """
        from ..crowd.coordinator import CrowdCoordinator

        if self._coordinator is None or fresh:
            self._coordinator = CrowdCoordinator(
                self.darwin, crowd_config, obs_tenant=self.tenant_id
            )
        return self._coordinator

    def flush(self) -> None:
        """Apply any deferred coordinator batch work (drain hook)."""
        if self._coordinator is not None:
            self._coordinator.flush()

    def save(self, path: str) -> str:
        """Checkpoint this tenant. The shared columns are stored as an arena
        *reference* (path + digest), tenant-local overlay columns inline."""
        return self.engine.save(path)

    def resident_bytes(self) -> int:
        """The tenant's marginal heap bytes: overlay columns + local bitsets."""
        return self.store.resident_coverage_bytes

    def close(self) -> None:
        """Release the tenant's overlay caches and drop its engine."""
        self.store.close()
        self.engine = None
        self._coordinator = None


class TenantPool:
    """Shared read-only substrate plus a registry of tenant engines.

    Args:
        corpus: The corpus every tenant labels.
        config: Per-tenant run configuration. ``config.index`` selects the
            shared coverage backend (``arena`` recommended for serving;
            ``memory`` works and is what the cross-backend test matrix
            exercises).
        index: A pre-built sealed index to adopt instead of building one.
        featurizer: A pre-fitted featurizer to adopt (its cache is shared).
        arena_path: Overrides ``config.index.arena_path`` for a built index.
        expected_digest: Content digest the shared arena must match — the
            digest-verified attach. Mismatch (or passing a digest for a
            memory-backed pool) raises
            :class:`~repro.errors.ConfigurationError`.
        seeds: Default seeds for spawned tenants (``rule_texts`` /
            ``positive_ids``), as :class:`~repro.engine.DarwinEngine` takes.
        dataset_spec: ``{"name", "options"}`` recorded into tenant
            checkpoints so they stay self-contained.
    """

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[DarwinConfig] = None,
        index: Optional[CorpusIndex] = None,
        featurizer: Optional[SentenceFeaturizer] = None,
        arena_path: Optional[str] = None,
        expected_digest: Optional[str] = None,
        seeds: Optional[Mapping[str, Any]] = None,
        dataset_spec: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.corpus = corpus
        self.config = config or DEFAULT_CONFIG
        self.seeds: Dict[str, Any] = dict(seeds or {})
        self.dataset_spec = dict(dataset_spec) if dataset_spec else None
        self._tenants: Dict[str, Tenant] = {}
        self._spawned = 0
        self._closed = False

        if index is None:
            index_config = self.config.index
            arena_config = None
            if index_config.coverage_backend == "arena":
                arena_config = ArenaConfig(
                    path=arena_path or index_config.arena_path,
                    bitset_cache_bytes=index_config.bitset_cache_bytes,
                )
            index = CorpusIndex.build(
                corpus,
                self._build_grammars(),
                max_depth=self.config.max_sketch_depth,
                min_coverage=self.config.min_coverage,
                coverage_backend=index_config.coverage_backend,
                arena_config=arena_config,
            )
        elif not index.sealed:
            index.seal()
        self.index = index

        # Freeze point: from here on the shared columns are immutable. The
        # arena swaps its writable handle for a read-only one, so even a
        # buggy tenant physically cannot append to the shared id space.
        arena = self.index.store.arena
        if arena is not None:
            self.index.store.flush()
            arena.reopen_read_only()
            self.arena_digest: Optional[str] = arena.digest
            if expected_digest is not None and expected_digest != self.arena_digest:
                raise ConfigurationError(
                    f"shared coverage arena {arena.path} does not match the "
                    f"expected digest: {self.arena_digest} != {expected_digest}"
                )
        else:
            self.arena_digest = None
            if expected_digest is not None:
                raise ConfigurationError(
                    "expected_digest requires an arena-backed pool; the "
                    "memory backend has no verifiable shared file"
                )

        if featurizer is None:
            featurizer = SentenceFeaturizer.fit(
                corpus,
                embedding_dim=self.config.classifier.embedding_dim,
                seed=self.config.classifier.seed,
                cache=SharedFeatureCache(),
            )
        self.featurizer = featurizer

        # Telemetry (repro.obs): pool-level residency re-expressed as gauges.
        # Registered weakly — the registry never keeps a closed pool alive.
        self._obs = get_registry()
        self._obs.register_collector(self._collect_obs_gauges)

    def _collect_obs_gauges(self) -> None:
        """Pull collector: :meth:`memory_stats` and the shared feature cache
        as ``pool_*`` gauges (runs at snapshot/render time only)."""
        if self._closed:
            return
        registry = self._obs
        stats = self.memory_stats()
        help_by_key = {
            "num_tenants": "Live tenants in the pool",
            "shared_resident_bytes": "Heap bytes of the shared substrate",
            "tenant_resident_bytes": "Summed marginal tenant overlay bytes",
            "feature_cache_bytes": "Shared feature cache resident bytes",
            "arena_file_bytes": "Backing arena file size (arena pools only)",
        }
        for key, value in stats.items():
            registry.gauge(
                f"pool_{key}", help_by_key.get(key, ""), labels=()
            ).set(value)
        fstats = self.featurizer.cache.stats()
        for key in ("hits", "misses", "entries", "nbytes"):
            registry.gauge(
                f"pool_feature_cache_{key}",
                f"Shared feature cache {key} across all tenants",
            ).set(fstats[key])

    def _build_grammars(self) -> List:
        from ..engine.engine import _build_grammars

        return _build_grammars(self.config, {})

    # ---------------------------------------------------------------- tenants
    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; spawned tenants are unusable then."""
        return self._closed

    @property
    def tenants(self) -> Dict[str, Tenant]:
        """Live tenants keyed by tenant id (a copy)."""
        return dict(self._tenants)

    @property
    def num_tenants(self) -> int:
        """Number of live tenants."""
        return len(self._tenants)

    def spawn(
        self,
        tenant_id: Optional[str] = None,
        seeds: Optional[Mapping[str, Any]] = None,
        config_overrides: Optional[Mapping[str, Any]] = None,
    ) -> Tenant:
        """Create one tenant over the shared substrate.

        Everything corpus-wide is shared by reference; the tenant's coverage
        writes go to a fresh :class:`OverlayCoverageStore`, and its engine is
        built from the pool config (optionally overridden per tenant —
        e.g. a different RNG ``seed`` or traversal).
        """
        if self._closed:
            raise ConfigurationError("cannot spawn tenants on a closed pool")
        if tenant_id is None:
            tenant_id = f"tenant-{self._spawned}"
        if tenant_id in self._tenants:
            raise ConfigurationError(f"tenant id {tenant_id!r} already exists")
        config = self.config
        if config_overrides:
            config = config.with_overrides(**dict(config_overrides))
        overlay = OverlayCoverageStore(self.index.store)
        tenant_index = SharedIndexView.over(self.index, overlay)
        engine = DarwinEngine(
            self.corpus,
            config=config,
            index=tenant_index,
            featurizer=self.featurizer.sharing_cache(),
            dataset_spec=self.dataset_spec,
            seeds=dict(seeds) if seeds is not None else dict(self.seeds),
        )
        tenant = Tenant(self, tenant_id, engine, overlay)
        # Per-tenant metric series (tenant_questions, coverage_*, ...) carry
        # the tenant id, not the corpus name the Darwin defaulted to.
        engine.darwin.obs_label = tenant_id
        self._tenants[tenant_id] = tenant
        self._spawned += 1
        return tenant

    def spawn_many(self, count: int) -> List[Tenant]:
        """Spawn ``count`` tenants with the pool's default seeds/config."""
        return [self.spawn() for _ in range(count)]

    def tenant(self, tenant_id: str) -> Tenant:
        """The live tenant for ``tenant_id``; raises when unknown."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise ConfigurationError(
                f"no tenant {tenant_id!r}; live tenants: "
                f"{', '.join(sorted(self._tenants)) or '(none)'}"
            )
        return tenant

    def evict(self, tenant_id: str) -> None:
        """Close and forget one tenant (its overlay dies; shared state stays)."""
        self.tenant(tenant_id).close()
        del self._tenants[tenant_id]

    def adopt(self, tenant_id: str, checkpoint_path: str) -> Tenant:
        """Rebuild a checkpointed tenant over *this* pool's shared substrate.

        The migration receive path: a tenant saved by :meth:`Tenant.save` in
        one pool (possibly in another process) is re-homed here without
        reloading the shared columns — its checkpoint's base reference is
        validated against the pool's own store (slot partition point, arena
        content digest), its overlay columns are re-interned in slot order
        over the pool's base, and its Darwin/oracle state is restored exactly
        as :meth:`DarwinEngine.load` would. The adopted tenant then answers
        question-for-question identically to one that never moved.
        """
        if self._closed:
            raise ConfigurationError("cannot adopt tenants on a closed pool")
        if tenant_id in self._tenants:
            raise ConfigurationError(f"tenant id {tenant_id!r} already exists")
        from ..engine.state import read_checkpoint

        manifest, bundle = read_checkpoint(checkpoint_path)
        config = DarwinConfig.from_dict(manifest["config"])
        index_state = manifest.get("index") or {}
        recorded_sentences = index_state.get("num_sentences")
        if recorded_sentences is not None and len(self.corpus) != int(
            recorded_sentences
        ):
            raise ConfigurationError(
                f"tenant checkpoint was taken over a corpus of "
                f"{recorded_sentences} sentences, but this pool serves "
                f"{len(self.corpus)}"
            )
        recorded_name = manifest.get("corpus_name")
        if recorded_name is not None and self.corpus.name != recorded_name:
            raise ConfigurationError(
                f"tenant checkpoint was taken over corpus {recorded_name!r}, "
                f"but this pool serves {self.corpus.name!r}"
            )
        if manifest.get("grammars_explicit"):
            raise ConfigurationError(
                "cannot adopt a tenant built with explicit grammar instances; "
                "only config-built grammars can be rebuilt in the new pool"
            )
        store_state = index_state.get("store") or {}
        if store_state.get("backend") != "overlay":
            raise ConfigurationError(
                f"tenant checkpoints layer an overlay over the shared store, "
                f"but this checkpoint records backend "
                f"{store_state.get('backend')!r}; it is not a pool tenant"
            )
        overlay = OverlayCoverageStore.from_state_over(
            self.index.store, store_state, bundle
        )
        tenant_index = SharedIndexView.over(self.index, overlay)
        engine = DarwinEngine(
            self.corpus,
            config=config,
            index=tenant_index,
            featurizer=self.featurizer.sharing_cache(),
            dataset_spec=manifest.get("dataset") or self.dataset_spec,
            grammar_options=manifest.get("grammar_options"),
            oracle_options=manifest.get("oracle_options"),
            seeds=manifest.get("seeds"),
        )
        engine.darwin.restore_state(manifest["darwin"], bundle)
        engine._restore_oracle(manifest.get("oracle_state"), None)
        tenant = Tenant(self, tenant_id, engine, overlay)
        engine.darwin.obs_label = tenant_id
        self._tenants[tenant_id] = tenant
        self._spawned += 1
        return tenant

    # ------------------------------------------------------------- accounting
    def shared_resident_bytes(self) -> int:
        """Heap bytes pinned by the substrate every tenant shares: the base
        store's residency (bitset cache + offsets for arena pools, the full
        columns for memory pools), the CSR inverted map, and the feature
        cache. Exists once per pool regardless of tenant count."""
        index = self.index
        inverted = (
            index._inv_nodes.nbytes
            + index._inv_starts.nbytes
            + index._node_counts.nbytes
        )
        return (
            index.store.resident_coverage_bytes
            + inverted
            + self.featurizer.cache.nbytes
        )

    def tenant_resident_bytes(self) -> int:
        """Sum of every live tenant's marginal overlay residency."""
        return sum(t.resident_bytes() for t in self._tenants.values())

    def memory_stats(self) -> Dict[str, float]:
        """Shared-vs-per-tenant residency breakdown (bench + serve report)."""
        stats = {
            "num_tenants": float(self.num_tenants),
            "shared_resident_bytes": float(self.shared_resident_bytes()),
            "tenant_resident_bytes": float(self.tenant_resident_bytes()),
            "feature_cache_bytes": float(self.featurizer.cache.nbytes),
        }
        arena = self.index.store.arena
        if arena is not None:
            stats["arena_file_bytes"] = float(
                arena.values_bytes + (arena.num_interned + 1) * 8
            )
        return stats

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close every tenant, then the shared store. Idempotent.

        Ordering matters on strict-unlink filesystems: tenant overlays first,
        the shared arena's file handle and memory map last, so by the time
        the caller deletes the arena file nothing in the pool still maps it.
        """
        if self._closed:
            return
        self._closed = True
        with ExitStack() as stack:
            # ExitStack unwinds LIFO: register the shared store first so it
            # closes after every tenant released its overlay.
            stack.callback(self.index.store.close)
            for tenant in self._tenants.values():
                stack.callback(tenant.close)
        self._tenants.clear()
        # Drop the substrate references so the node views (and through them
        # the arena's memory map) can be reclaimed as soon as callers drop
        # their tenant handles.
        self.index = None
        self.featurizer = None

    def __enter__(self) -> "TenantPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        backend = "closed" if self._closed else self.index.store.backend
        return (
            f"TenantPool(tenants={self.num_tenants}, backend={backend!r}, "
            f"digest={self.arena_digest!r})"
        )
