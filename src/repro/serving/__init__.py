"""Multi-tenant serving: N Darwin engines over one shared read-only arena.

The Darwin loop is per-user mutable state (rules, hierarchy, classifier
weights, traversal pools, RNG streams) over corpus-wide immutable state (the
index and its coverage columns) — exactly the split a multi-tenant server
needs. :class:`TenantPool` attaches the immutable substrate once — a
digest-verified read-only :class:`~repro.index.arena.CoverageArena`, the
sealed :class:`~repro.index.CorpusIndex`, and a shared featurizer cache — and
spawns per-tenant :class:`~repro.engine.DarwinEngine`\\ s whose coverage
writes land in a copy-on-write
:class:`~repro.index.overlay.OverlayCoverageStore`, so shared resident bytes
stay O(one tenant) no matter how many tenants attach
(``benchmarks/bench_tenants.py``).

:func:`serve` drives many tenants concurrently on one asyncio event loop,
one :class:`~repro.crowd.CrowdCoordinator` per tenant.
"""

from .pool import Tenant, TenantPool
from .server import ServeReport, TenantServeResult, serve, serve_tenants

__all__ = [
    "Tenant",
    "TenantPool",
    "ServeReport",
    "TenantServeResult",
    "serve",
    "serve_tenants",
]
