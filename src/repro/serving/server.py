"""The serve loop: N tenants multiplexed on one asyncio event loop.

Each tenant gets its own :class:`~repro.crowd.CrowdCoordinator` (per-tenant
tickets, votes, batching) and its own simulated annotators; the event loop
interleaves all of them, so K annotators × N tenants think times overlap
while every coordinator's bookkeeping stays serial. This is deliberately the
same worker coroutine the single-tenant crowd runner uses
(:func:`repro.crowd.drive_crowd`) — the serving layer adds tenancy, not a
second concurrency model.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import CrowdConfig
from ..core.oracle import Oracle
from ..crowd.coordinator import CrowdCoordinator, CrowdResult
from ..crowd.runner import drive_crowd, simulated_annotators
from ..errors import ConfigurationError
from ..obs import trace as obs_trace
from .pool import Tenant, TenantPool


@dataclass
class TenantServeResult:
    """One tenant's outcome from a serve run.

    Attributes:
        tenant_id: The tenant the result belongs to.
        crowd: Coordinator statistics plus the underlying Darwin result.
        overlay_interned: Coverages the tenant added to its overlay store.
        resident_bytes: The tenant's marginal heap residency after the run.
    """

    tenant_id: str
    crowd: CrowdResult
    overlay_interned: int
    resident_bytes: int


@dataclass
class ServeReport:
    """Aggregate outcome of serving several tenants concurrently.

    Attributes:
        results: Per-tenant results keyed by tenant id.
        wall_seconds: Wall-clock time of the multiplexed answering loop.
        memory: The pool's shared-vs-tenant residency breakdown at the end.
    """

    results: Dict[str, TenantServeResult]
    wall_seconds: float
    memory: Dict[str, float] = field(default_factory=dict)

    @property
    def questions_committed(self) -> int:
        """Committed questions summed over every tenant."""
        return sum(r.crowd.questions_committed for r in self.results.values())

    @property
    def answers_per_sec(self) -> float:
        """Committed answers per wall-clock second across the pool."""
        return self.questions_committed / max(self.wall_seconds, 1e-9)


async def serve_tenants(
    pool: TenantPool,
    crowd_config: Optional[CrowdConfig] = None,
    tenants: Optional[Sequence[Tenant]] = None,
    annotators_for: Optional[Dict[str, Sequence[Oracle]]] = None,
) -> ServeReport:
    """Drive every given tenant's crowd session concurrently; await-able.

    Args:
        pool: The pool whose tenants are served.
        crowd_config: Crowd parameters applied to every tenant.
        tenants: Tenants to serve (default: all live tenants). Unstarted
            tenants are seeded from their engine's default seeds.
        annotators_for: Optional per-tenant oracle lists keyed by tenant id
            (default: :func:`simulated_annotators` per tenant, so every
            tenant sees an identically-seeded crowd).
    """
    config = crowd_config or CrowdConfig()
    chosen = list(tenants) if tenants is not None else list(pool.tenants.values())
    if not chosen:
        raise ConfigurationError("no tenants to serve; spawn some first")
    coordinators: List[CrowdCoordinator] = []
    crews: List[Sequence[Oracle]] = []
    for tenant in chosen:
        if not tenant.started:
            tenant.start()
        # fresh=True: each serve run is its own crowd session; the cached
        # coordinator handle is for stateless frontends (the HTTP gateway).
        coordinators.append(tenant.coordinator(config, fresh=True))
        crew = (annotators_for or {}).get(tenant.tenant_id)
        if crew is None:
            crew = simulated_annotators(pool.corpus, config)
        elif len(crew) != config.num_annotators:
            raise ConfigurationError(
                f"tenant {tenant.tenant_id!r} got {len(crew)} annotators for "
                f"num_annotators={config.num_annotators}"
            )
        crews.append(crew)
    async def _serve_one(
        tenant: Tenant, coordinator: CrowdCoordinator, crew: Sequence[Oracle]
    ) -> None:
        # Each gathered task copies the ambient context, so every tenant's
        # serve.tenant span parents its own darwin.* children without
        # cross-talk between concurrently served tenants.
        with obs_trace("serve.tenant", tenant=tenant.tenant_id) as span:
            await drive_crowd(coordinator, crew, config)
            span.count("questions_committed", coordinator.questions_committed)
            span.count("votes_collected", coordinator.votes_collected)

    start = time.perf_counter()
    await asyncio.gather(
        *(
            _serve_one(tenant, coordinator, crew)
            for tenant, coordinator, crew in zip(chosen, coordinators, crews)
        )
    )
    wall_seconds = time.perf_counter() - start
    results = {
        tenant.tenant_id: TenantServeResult(
            tenant_id=tenant.tenant_id,
            crowd=coordinator.result(),
            overlay_interned=tenant.store.num_overlay_interned,
            resident_bytes=tenant.resident_bytes(),
        )
        for tenant, coordinator in zip(chosen, coordinators)
    }
    return ServeReport(
        results=results, wall_seconds=wall_seconds, memory=pool.memory_stats()
    )


def serve(
    pool: TenantPool,
    num_tenants: Optional[int] = None,
    crowd_config: Optional[CrowdConfig] = None,
) -> ServeReport:
    """Spawn (if needed) and serve tenants to completion; blocking wrapper.

    Args:
        pool: The pool to serve from.
        num_tenants: Serve (at least) this many tenants, topping the pool up
            with default-seeded spawns when it holds fewer. A pool that
            already holds more keeps them all — serving never evicts.
        crowd_config: Crowd parameters applied to every tenant.
    """
    if num_tenants and pool.num_tenants < num_tenants:
        pool.spawn_many(num_tenants - pool.num_tenants)
    if not pool.num_tenants:
        raise ConfigurationError(
            "pool has no tenants; pass num_tenants or spawn() first"
        )
    return asyncio.run(serve_tenants(pool, crowd_config=crowd_config))
