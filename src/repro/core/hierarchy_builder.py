"""Hierarchy construction from candidate heuristics (Section 3.2).

Candidates returned by Algorithm 2 are arranged into a DAG whose edges follow
the index's parent/child (generalization/specialization) relation. Building
edges through the grammar's ``generalizations`` chains keeps construction
linear in the number of candidates instead of quadratic pairwise subsumption
checks.

After arrangement, a cleanup pass removes heuristics that cannot add any new
positive sentence beyond what the accepted rules already cover.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..grammars.base import Expression
from ..index.trie_index import CorpusIndex
from ..index.hierarchy import RuleHierarchy
from ..rules.heuristic import LabelingHeuristic


def build_hierarchy(
    candidates: Iterable[LabelingHeuristic],
    index: Optional[CorpusIndex] = None,
    covered_ids: Optional[Set[int]] = None,
    max_generalization_hops: int = 3,
) -> RuleHierarchy:
    """Arrange ``candidates`` into a :class:`RuleHierarchy`.

    Args:
        candidates: Candidate rules with coverage computed.
        index: The corpus index (used only to confirm expressions exist; edges
            are derived from the grammars' generalization chains).
        covered_ids: When given, run the cleanup pass dropping rules that add
            no sentence beyond this set (a set of ids or a boolean mask).
        max_generalization_hops: How far up the generalization chain to look
            for a parent present in the candidate set (a candidate's immediate
            generalization may itself not have been selected).

    Returns:
        The populated hierarchy.
    """
    hierarchy = RuleHierarchy()
    candidate_list = list(candidates)
    for rule in candidate_list:
        hierarchy.add(rule)

    by_key: Dict[tuple, LabelingHeuristic] = {
        (rule.grammar.name, rule.expression): rule for rule in candidate_list
    }

    for rule in candidate_list:
        parents = _find_parents(rule, by_key, max_generalization_hops)
        for parent in parents:
            if parent.coverage_size >= rule.coverage_size:
                hierarchy.add_edge(parent, rule)

    if covered_ids is not None:
        hierarchy.cleanup(covered_ids)
    return hierarchy


def attach_candidates(
    hierarchy: RuleHierarchy,
    new_rules: Iterable[LabelingHeuristic],
    max_generalization_hops: int = 3,
) -> List[LabelingHeuristic]:
    """Incrementally add candidates to an existing hierarchy.

    Used by Darwin's incremental hierarchy refresh: instead of regenerating
    all candidates after every accepted rule, only the rules whose overlap
    with the newly discovered positives changed are materialized and linked
    into the live hierarchy. Edges are discovered the same way as in
    :func:`build_hierarchy` (walking each new rule's generalization chain);
    downward edges from a new rule to pre-existing candidates are not
    re-derived, which the traversal strategies tolerate because they fall
    back to the on-the-fly neighbour provider.

    Returns the rules actually added (duplicates are skipped).
    """
    by_key: Dict[tuple, LabelingHeuristic] = {
        (rule.grammar.name, rule.expression): rule for rule in hierarchy.rules()
    }
    added: List[LabelingHeuristic] = []
    for rule in new_rules:
        if hierarchy.add(rule):
            by_key[(rule.grammar.name, rule.expression)] = rule
            added.append(rule)
    for rule in added:
        parents = _find_parents(rule, by_key, max_generalization_hops)
        for parent in parents:
            if parent.coverage_size >= rule.coverage_size:
                hierarchy.add_edge(parent, rule)
    if added:
        # Renumber the interval-encoded node table once per attach batch, so
        # the refresh pays one vectorized rebuild here instead of a lazy one
        # in the middle of the next traversal query.
        hierarchy.node_table()
    return added


def _find_parents(
    rule: LabelingHeuristic,
    by_key: Dict[tuple, LabelingHeuristic],
    max_hops: int,
) -> List[LabelingHeuristic]:
    """Walk up the generalization chain until candidates are found."""
    grammar = rule.grammar
    found: List[LabelingHeuristic] = []
    frontier: List[Expression] = list(grammar.generalizations(rule.expression))
    visited: Set[Expression] = set()
    hops = 0
    while frontier and hops < max_hops:
        next_frontier: List[Expression] = []
        for expression in frontier:
            if expression in visited:
                continue
            visited.add(expression)
            candidate = by_key.get((grammar.name, expression))
            if candidate is not None and candidate != rule:
                found.append(candidate)
            else:
                next_frontier.extend(grammar.generalizations(expression))
        if found:
            break
        frontier = next_frontier
        hops += 1
    return found


def expand_rule_neighbourhood(
    rule: LabelingHeuristic,
    index: CorpusIndex,
    direction: str,
    corpus=None,
    min_coverage: int = 1,
    limit: int = 50,
) -> List[LabelingHeuristic]:
    """On-the-fly parents/children of a rule, for LocalSearch's lazy expansion.

    Args:
        rule: The rule whose neighbourhood is requested.
        index: Corpus index used to resolve coverage cheaply.
        direction: ``"parents"`` (generalizations) or ``"children"``
            (specializations).
        corpus: Optional corpus used to evaluate expressions missing from the
            index and to provide witness sentences for specialization.
        min_coverage: Skip neighbours covering fewer sentences.
        limit: Maximum number of neighbours returned.

    Returns:
        Neighbouring rules with coverage attached, largest coverage first.
    """
    if direction not in {"parents", "children"}:
        raise ValueError("direction must be 'parents' or 'children'")
    grammar = rule.grammar
    expressions: List[Expression] = []
    if direction == "parents":
        expressions = list(grammar.generalizations(rule.expression))
    else:
        node = index.lookup(grammar.name, rule.expression)
        if node is not None:
            expressions = [
                expr for (name, expr) in index.children_of(node.key) if name == grammar.name
            ]
        if not expressions and corpus is not None and rule.coverage_ids:
            # Fall back to grammar specializations against witness sentences.
            witness_ids = sorted(rule.coverage)[:5]
            seen: Set[Expression] = set()
            for witness_id in witness_ids:
                for expr in grammar.specializations(rule.expression, corpus[witness_id]):
                    if expr not in seen:
                        seen.add(expr)
                        expressions.append(expr)

    neighbours: List[LabelingHeuristic] = []
    for expression in expressions:
        coverage = index.coverage_of_expression(grammar.name, expression, corpus)
        if len(coverage) < min_coverage:
            continue
        neighbours.append(
            LabelingHeuristic(grammar=grammar, expression=expression).with_coverage(coverage)
        )
    neighbours.sort(key=lambda r: (-r.coverage_size, r.render()))
    return neighbours[:limit]
