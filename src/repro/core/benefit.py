"""Benefit scoring (Section 3.3).

The benefit of a heuristic ``r`` is the expected number of *new* positives its
coverage would contribute:

    benefit(r) = sum_{s in C_r \\ P} p_s

where ``P`` is the set of positives discovered so far and ``p_s`` the benefit
classifier's probability that sentence ``s`` is positive. The average benefit
(benefit per new instance) drives UniversalSearch's 0.5 cutoff.

Benefits for all candidates only change when the classifier is retrained or
``P`` grows, so :class:`BenefitScorer` caches per-rule values against a
version counter bumped by :meth:`BenefitScorer.invalidate`.

The scorer is columnar: ``P`` is kept as a boolean mask so that for a rule
whose coverage is an interned :class:`~repro.index.coverage.CoverageView` the
benefit is one fancy-indexing reduction — ``scores[new_ids].sum()`` with
``new_ids = C_r[~mask[C_r]]`` — instead of a per-id Python loop. Because
views are interned (identical coverage ⇒ identical object), the cache is
keyed by view identity, so structurally different rules sharing a coverage
set also share one cached benefit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..index.coverage import batched_new_counts
from ..rules.heuristic import LabelingHeuristic


class BenefitScorer:
    """Caches benefit computations for candidate rules.

    Args:
        scores: Per-sentence positive-probability estimates, indexed by
            sentence id (the trainer's ``score_corpus()`` output).
        covered_ids: The currently covered positive set ``P``.
    """

    def __init__(self, scores: np.ndarray, covered_ids: Set[int]) -> None:
        self._scores = np.asarray(scores, dtype=np.float64)
        self._covered: Set[int] = set(covered_ids)
        self._covered_mask = self._build_mask(self._covered)
        self._version = 0
        self._cache: Dict[object, Tuple[float, int]] = {}
        self._count_cache: Dict[object, int] = {}

    def _build_mask(self, covered: Set[int]) -> np.ndarray:
        size = self._scores.size
        if covered:
            size = max(size, max(covered) + 1)
        mask = np.zeros(size, dtype=bool)
        if covered:
            mask[list(covered)] = True
        return mask

    # ----------------------------------------------------------------- state
    def update(self, scores: Optional[np.ndarray] = None,
               covered_ids: Optional[Set[int]] = None) -> None:
        """Replace scores and/or covered set, invalidating cached benefits."""
        if scores is not None:
            self._scores = np.asarray(scores, dtype=np.float64)
        if covered_ids is not None:
            self._covered = set(covered_ids)
        if scores is not None or covered_ids is not None:
            self._covered_mask = self._build_mask(self._covered)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop all cached benefit values."""
        self._version += 1
        self._cache.clear()
        self._count_cache.clear()

    @property
    def covered_ids(self) -> Set[int]:
        """The covered positive set ``P`` used for gain computation."""
        return set(self._covered)

    @property
    def covered_mask(self) -> np.ndarray:
        """``P`` as a boolean mask (shared, do not mutate)."""
        return self._covered_mask

    # --------------------------------------------------------------- scoring
    def _new_ids_array(self, rule: LabelingHeuristic) -> np.ndarray:
        """``C_r \\ P`` as an int array (vectorized when coverage is a view)."""
        view = rule.coverage_view
        if view is not None:
            return view.new_ids_given(self._covered_mask)
        return np.array(
            [sid for sid in rule.coverage if sid not in self._covered],
            dtype=np.int64,
        )

    def new_ids(self, rule: LabelingHeuristic) -> List[int]:
        """Sentence ids the rule would newly cover (``C_r \\ P``)."""
        return self._new_ids_array(rule).tolist()

    def new_count(self, rule: LabelingHeuristic) -> int:
        """``|C_r \\ P|`` without materializing a Python list.

        Cached per (classifier version, coverage identity): the traversal's
        gain filter probes every candidate on every propose, and ``P`` only
        changes between versions.
        """
        key = self._cache_key(rule)
        count = self._count_cache.get(key)
        if count is not None:
            return count
        cached = self._cache.get(key)
        if cached is not None:
            count = cached[1]
        else:
            view = rule.coverage_view
            if view is not None:
                count = view.count - view.overlap_with(self._covered_mask)
            else:
                count = sum(1 for sid in rule.coverage if sid not in self._covered)
        self._count_cache[key] = count
        return count

    def prime_new_counts(self, rules: Iterable[LabelingHeuristic]) -> None:
        """Batch-fill the :meth:`new_count` cache for view-backed rules.

        One fused kernel (:func:`~repro.index.coverage.batched_new_counts`)
        computes ``|C_r \\ P|`` for **all** uncached live candidates at once,
        so a propose step pays one concatenated mask gather per version
        instead of one probe per rule. Per-rule :meth:`new_count` then reads
        the cache; frozenset-backed rules keep the per-rule path.
        """
        pending: List[object] = []
        keys: List[object] = []
        cache = self._count_cache
        seen: Set[object] = set()
        for rule in rules:
            view = rule.coverage_view
            if view is None:
                continue
            key = (id(view), True)
            if key in cache or key in seen:
                continue
            seen.add(key)
            pending.append(view)
            keys.append(key)
        if not pending:
            return
        counts = batched_new_counts(pending, self._covered_mask)
        cache.update(zip(keys, counts.tolist()))

    def _cache_key(self, rule: LabelingHeuristic) -> object:
        view = rule.coverage_view
        if view is not None:
            # Interned views are content-unique, so id() keys benefits by
            # coverage content; the store keeps the view alive.
            return (id(view), True)
        return (rule, False)

    def benefit(self, rule: LabelingHeuristic) -> float:
        """Total benefit of ``rule`` (expected number of new positives)."""
        key = self._cache_key(rule)
        cached = self._cache.get(key)
        if cached is not None:
            return cached[0]
        new_ids = self._new_ids_array(rule)
        if not new_ids.size:
            value = 0.0
        else:
            value = float(self._scores[new_ids].sum())
        self._cache[key] = (value, int(new_ids.size))
        return value

    def average_benefit(self, rule: LabelingHeuristic) -> float:
        """Benefit per new instance (0.0 when the rule adds nothing)."""
        key = self._cache_key(rule)
        if key not in self._cache:
            self.benefit(rule)
        value, count = self._cache[key]
        if count == 0:
            return 0.0
        return value / count

    def most_beneficial(
        self, rules: Iterable[LabelingHeuristic],
        min_average: Optional[float] = None,
    ) -> Optional[LabelingHeuristic]:
        """The rule with maximum benefit, optionally filtered by average benefit.

        Ties are broken by larger coverage, then by the rendered rule string so
        selection is deterministic.
        """
        best_rule: Optional[LabelingHeuristic] = None
        best_key: Tuple[float, int] = (-1.0, 0)
        best_render: Optional[str] = None
        for rule in rules:
            if min_average is not None and self.average_benefit(rule) <= min_average:
                continue
            key = (self.benefit(rule), rule.coverage_size)
            if best_rule is None or key > best_key:
                best_rule = rule
                best_key = key
                best_render = None
            elif key == best_key:
                # Exact tie: fall back to the rendered string, computed lazily
                # so the common no-tie case never renders every candidate.
                if best_render is None:
                    best_render = best_rule.render()
                render = rule.render()
                if render > best_render:
                    best_rule = rule
                    best_render = render
        return best_rule

    def rank(self, rules: Iterable[LabelingHeuristic]) -> List[LabelingHeuristic]:
        """Rules sorted by decreasing benefit (deterministic tie-breaks)."""
        return sorted(
            rules,
            key=lambda r: (-self.benefit(r), -r.coverage_size, r.render()),
        )
