"""Benefit scoring (Section 3.3).

The benefit of a heuristic ``r`` is the expected number of *new* positives its
coverage would contribute:

    benefit(r) = sum_{s in C_r \\ P} p_s

where ``P`` is the set of positives discovered so far and ``p_s`` the benefit
classifier's probability that sentence ``s`` is positive. The average benefit
(benefit per new instance) drives UniversalSearch's 0.5 cutoff.

Benefits for all candidates only change when the classifier is retrained or
``P`` grows, so :class:`BenefitScorer` caches per-rule values against a
version counter bumped by :meth:`BenefitScorer.invalidate`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..rules.heuristic import LabelingHeuristic


class BenefitScorer:
    """Caches benefit computations for candidate rules.

    Args:
        scores: Per-sentence positive-probability estimates, indexed by
            sentence id (the trainer's ``score_corpus()`` output).
        covered_ids: The currently covered positive set ``P``.
    """

    def __init__(self, scores: np.ndarray, covered_ids: Set[int]) -> None:
        self._scores = np.asarray(scores, dtype=np.float64)
        self._covered: Set[int] = set(covered_ids)
        self._version = 0
        self._cache: Dict[Tuple[int, LabelingHeuristic], Tuple[float, int]] = {}

    # ----------------------------------------------------------------- state
    def update(self, scores: Optional[np.ndarray] = None,
               covered_ids: Optional[Set[int]] = None) -> None:
        """Replace scores and/or covered set, invalidating cached benefits."""
        if scores is not None:
            self._scores = np.asarray(scores, dtype=np.float64)
        if covered_ids is not None:
            self._covered = set(covered_ids)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop all cached benefit values."""
        self._version += 1
        self._cache.clear()

    @property
    def covered_ids(self) -> Set[int]:
        """The covered positive set ``P`` used for gain computation."""
        return set(self._covered)

    # --------------------------------------------------------------- scoring
    def new_ids(self, rule: LabelingHeuristic) -> List[int]:
        """Sentence ids the rule would newly cover (``C_r \\ P``)."""
        return [sid for sid in rule.coverage if sid not in self._covered]

    def benefit(self, rule: LabelingHeuristic) -> float:
        """Total benefit of ``rule`` (expected number of new positives)."""
        key = (self._version, rule)
        cached = self._cache.get(key)
        if cached is not None:
            return cached[0]
        new_ids = self.new_ids(rule)
        if not new_ids:
            value = 0.0
        else:
            value = float(self._scores[np.array(new_ids)].sum())
        self._cache[key] = (value, len(new_ids))
        return value

    def average_benefit(self, rule: LabelingHeuristic) -> float:
        """Benefit per new instance (0.0 when the rule adds nothing)."""
        key = (self._version, rule)
        if key not in self._cache:
            self.benefit(rule)
        value, count = self._cache[key]
        if count == 0:
            return 0.0
        return value / count

    def most_beneficial(
        self, rules: Iterable[LabelingHeuristic],
        min_average: Optional[float] = None,
    ) -> Optional[LabelingHeuristic]:
        """The rule with maximum benefit, optionally filtered by average benefit.

        Ties are broken by larger coverage, then by the rendered rule string so
        selection is deterministic.
        """
        best_rule: Optional[LabelingHeuristic] = None
        best_key: Tuple[float, int, str] = (-1.0, 0, "")
        for rule in rules:
            if min_average is not None and self.average_benefit(rule) <= min_average:
                continue
            key = (self.benefit(rule), rule.coverage_size, rule.render())
            if best_rule is None or key > best_key:
                best_rule = rule
                best_key = key
        return best_rule

    def rank(self, rules: Iterable[LabelingHeuristic]) -> List[LabelingHeuristic]:
        """Rules sorted by decreasing benefit (deterministic tie-breaks)."""
        return sorted(
            rules,
            key=lambda r: (-self.benefit(r), -r.coverage_size, r.render()),
        )
