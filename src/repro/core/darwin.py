"""The end-to-end Darwin system (Algorithm 1).

:class:`Darwin` wires together the corpus index, candidate generation, the
hierarchy, a traversal strategy, the benefit classifier, and an oracle into
the interactive rule-discovery loop:

1. index the corpus (derivation sketches merged into a trie-like DAG),
2. initialize the positive set ``P`` from the seed rule(s) or seed sentences,
3. train the benefit classifier on ``P`` plus sampled presumed negatives,
4. repeat until the oracle budget is exhausted:
   a. (re)generate the candidate hierarchy when new positives arrived,
   b. let the traversal strategy pick the most beneficial candidate,
   c. ask the oracle; on YES add the rule to ``R``, grow ``P``, retrain.

Every query appends a :class:`QueryRecord` so experiments can plot coverage /
F-score against the number of questions, exactly as Figures 9 and 10 do.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

import numpy as np

from ..classifier.features import SentenceFeaturizer
from ..classifier.trainer import ClassifierTrainer
from ..config import DEFAULT_CONFIG, DarwinConfig
from ..errors import BudgetExhaustedError, ConfigurationError
from ..grammars.base import HeuristicGrammar
from ..grammars.tokensregex import TokensRegexGrammar
from ..index.coverage import batched_overlap_counts
from ..index.hierarchy import RuleHierarchy
from ..index.trie_index import CorpusIndex
from ..obs import get_registry, trace as obs_trace
from ..rules.heuristic import LabelingHeuristic
from ..rules.rule_set import RuleSet
from ..text.corpus import Corpus
from ..utils.rng import derive_rng
from ..utils.timing import Stopwatch
from .benefit import BenefitScorer
from .candidates import CandidateOptions, generate_candidates, seed_candidates
from .hierarchy_builder import attach_candidates, build_hierarchy, expand_rule_neighbourhood
from .oracle import BudgetedOracle, Oracle
from .score_update import ScoreUpdater
from .traversal.base import TraversalContext, make_traversal


@dataclass(frozen=True)
class QueryRecord:
    """One row of a Darwin run's history.

    Attributes:
        question_number: 1-based index of the oracle query.
        rule: Human-readable rule string submitted to the oracle.
        grammar: Name of the grammar the rule belongs to.
        answer: True if the oracle answered YES.
        rule_coverage: ``|C_r|`` of the submitted rule.
        covered: ``|P|`` after processing the answer.
        recall: Recall of ``P`` over ground-truth positives (0.0 if unknown).
        precision: Precision of ``P`` over ground-truth (0.0 if unknown).
        classifier_f1: F1 of the benefit classifier at this point (0.0 if
            ground truth is unavailable).
    """

    question_number: int
    rule: str
    grammar: str
    answer: bool
    rule_coverage: int
    covered: int
    recall: float
    precision: float
    classifier_f1: float


@dataclass
class DarwinResult:
    """Output of a Darwin run.

    Attributes:
        rule_set: The accepted rules ``R`` (with coverage).
        covered_ids: The union coverage ``P``.
        history: Per-query records (coverage / F-score curves).
        queries_used: Number of oracle queries consumed.
        timings: Wall-clock breakdown per phase — ``Stopwatch.as_dict``
            blocks of ``{"total", "count", "mean"}`` seconds keyed by phase
            name (index build, hierarchy, traversal...).
        config: The configuration used for the run.
    """

    rule_set: RuleSet
    covered_ids: Set[int]
    history: List[QueryRecord]
    queries_used: int
    timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    config: DarwinConfig = field(default_factory=lambda: DEFAULT_CONFIG)

    @property
    def final_recall(self) -> float:
        """Recall of ``P`` after the last query (0.0 with no queries)."""
        return self.history[-1].recall if self.history else 0.0

    @property
    def final_f1(self) -> float:
        """Classifier F1 after the last query (0.0 with no queries)."""
        return self.history[-1].classifier_f1 if self.history else 0.0

    def recall_curve(self) -> List[float]:
        """Recall after each question (Figures 9a-d / 10a)."""
        return [record.recall for record in self.history]

    def f1_curve(self) -> List[float]:
        """Classifier F1 after each question (Figures 9e-h / 10b)."""
        return [record.classifier_f1 for record in self.history]

    def accepted_rules(self) -> List[str]:
        """Rendered strings of the accepted rules in acceptance order."""
        return self.rule_set.describe()


class Darwin:
    """Adaptive rule discovery over a text corpus.

    .. deprecated:: 1.1
        ``Darwin`` remains fully supported as the in-process core, but new
        code should enter through :class:`repro.engine.DarwinEngine`, which
        adds declarative construction (``from_config``), checkpoint/resume
        (``save``/``load``), and session handles (``session``/``crowd``) on
        top of this class. ``Darwin`` is kept importable as the thin
        compatibility entry point.

    Args:
        corpus: The corpus to label.
        grammars: Heuristic grammars to search over (default: TokensRegex).
        config: Run configuration (:class:`DarwinConfig`).
        index: Optionally a pre-built corpus index (reused across runs in the
            experiments, mirroring the paper's one-off index construction).
        featurizer: Optionally a pre-fitted sentence featurizer.
    """

    def __init__(
        self,
        corpus: Corpus,
        grammars: Optional[Sequence[HeuristicGrammar]] = None,
        config: Optional[DarwinConfig] = None,
        index: Optional[CorpusIndex] = None,
        featurizer: Optional[SentenceFeaturizer] = None,
    ) -> None:
        self.corpus = corpus
        self.config = config or DEFAULT_CONFIG
        self.grammars: List[HeuristicGrammar] = list(
            grammars or [TokensRegexGrammar(max_phrase_len=self.config.max_phrase_len)]
        )
        if not self.grammars:
            raise ConfigurationError("at least one grammar is required")
        self.stopwatch = Stopwatch()
        # Telemetry (repro.obs): instruments are resolved once here, so every
        # hot-path site below is a single method call — a no-op when the
        # process default is the NullRegistry. The label is "tenant" because
        # a solo engine is the one-tenant case; TenantPool.spawn() overwrites
        # obs_label with the tenant id.
        self.obs_label = corpus.name
        registry = get_registry()
        self._obs = registry
        self._obs_phase = registry.histogram(
            "darwin_phase_seconds",
            "Wall-clock seconds per Darwin loop phase",
            labels=("phase",),
        )
        _questions = registry.counter(
            "darwin_questions_total",
            "Oracle answers applied to the rule set",
            labels=("answer",),
        )
        self._obs_answer_yes = _questions.labels(answer="yes")
        self._obs_answer_no = _questions.labels(answer="no")
        registry.register_collector(self._collect_obs_gauges)
        if index is not None:
            self.index = index
        else:
            index_config = self.config.index
            arena_config = None
            if index_config.coverage_backend == "arena":
                from ..index.arena import ArenaConfig

                arena_config = ArenaConfig(
                    path=index_config.arena_path,
                    bitset_cache_bytes=index_config.bitset_cache_bytes,
                )
            with self._phase("index_build"):
                self.index = CorpusIndex.build(
                    corpus,
                    self.grammars,
                    max_depth=self.config.max_sketch_depth,
                    min_coverage=self.config.min_coverage,
                    coverage_backend=index_config.coverage_backend,
                    arena_config=arena_config,
                )
        if featurizer is not None:
            self.featurizer = featurizer
        else:
            with self._phase("embeddings"):
                self.featurizer = SentenceFeaturizer.fit(
                    corpus,
                    embedding_dim=self.config.classifier.embedding_dim,
                    seed=self.config.classifier.seed,
                )
        self._rng = derive_rng(self.config.seed, "darwin", corpus.name)
        # Ground truth is immutable per corpus; compute it once instead of
        # re-scanning every sentence on every oracle answer.
        self._truth_ids: Optional[Set[int]] = (
            corpus.positive_ids() if corpus.has_labels() else None
        )

        # Mutable per-run state (populated by start()).
        self.rule_set = RuleSet()
        self.positive_ids: Set[int] = set()
        self.trainer: Optional[ClassifierTrainer] = None
        self.benefit: Optional[BenefitScorer] = None
        self.updater: Optional[ScoreUpdater] = None
        self.hierarchy: Optional[RuleHierarchy] = None
        self.traversal = None
        self.history: List[QueryRecord] = []
        self._in_flight: Set[LabelingHeuristic] = set()
        self._started = False
        self._ref_cache: Dict[tuple, LabelingHeuristic] = {}

    # ------------------------------------------------------------- telemetry
    @contextmanager
    def _phase(self, name: str, phase: Optional[str] = None) -> Iterator[object]:
        """Stopwatch + span + per-phase latency histogram in one wrapper.

        ``name`` keys the stopwatch (the historical timing names); ``phase``
        overrides the telemetry label where the observability vocabulary
        differs (e.g. stopwatch ``traversal`` is phase ``propose``). Yields
        the open span so callers can annotate it.
        """
        label = phase or name
        with self.stopwatch.measure(name), obs_trace(
            f"darwin.{label}", tenant=self.obs_label
        ) as span:
            start = time.perf_counter()
            try:
                yield span
            finally:
                self._obs_phase.labels(phase=label).observe(
                    time.perf_counter() - start
                )

    def _collect_obs_gauges(self) -> None:
        """Pull collector: re-express live engine state as labeled gauges.

        Registered weakly on the registry at construction; runs only when a
        snapshot or Prometheus exposition is rendered, never on the hot path.
        """
        registry = self._obs

        def gauge(name: str, help_text: str, value: float) -> None:
            registry.gauge(name, help_text, labels=("tenant",)).labels(
                tenant=self.obs_label
            ).set(float(value))

        gauge("tenant_questions", "Questions answered this session",
              len(self.history))
        gauge("tenant_rules_accepted", "Rules currently in the accepted set",
              len(self.rule_set))
        gauge("tenant_covered_positives", "Distinct positive sentence ids in P",
              len(self.positive_ids))
        gauge("tenant_in_flight", "Dispatched but unanswered proposals",
              len(self._in_flight))
        if self.trainer is not None:
            gauge("tenant_retrains", "Classifier retrains this session",
                  self.trainer.retrain_count)
        store = self.index.store
        stats = store.stats()
        gauge("coverage_interned", "Distinct interned coverages",
              stats.get("num_interned", 0.0))
        gauge("coverage_resident_bytes", "Heap bytes held by coverage columns",
              stats.get("resident_coverage_bytes", 0.0))
        bitset = store.bitset_cache_stats()
        gauge("coverage_bitset_hits", "Bitset LRU cache hits",
              bitset.get("hits", 0.0))
        gauge("coverage_bitset_misses", "Bitset LRU cache misses",
              bitset.get("misses", 0.0))
        gauge("coverage_bitset_evictions", "Bitset LRU cache evictions",
              bitset.get("evictions", 0.0))
        gauge("coverage_bitset_bytes", "Bitset LRU cache resident bytes",
              bitset.get("cached_bytes", 0.0))
        for key in ("shared_routed", "local_routed", "local_interned"):
            if key in stats:  # overlay backend only
                gauge(f"overlay_{key}",
                      "Overlay intern() routing (see OverlayCoverageStore)",
                      stats[key])
        cache = getattr(self.featurizer, "cache", None)
        if cache is not None:
            fstats = cache.stats()
            gauge("feature_cache_hits", "Feature cache hits", fstats["hits"])
            gauge("feature_cache_misses", "Feature cache misses",
                  fstats["misses"])
            gauge("feature_cache_entries", "Feature cache entries",
                  fstats["entries"])
            gauge("feature_cache_nbytes", "Feature cache resident bytes",
                  fstats["nbytes"])

    # ------------------------------------------------------------------ setup
    def parse_seed_rule(self, text: str, grammar_name: Optional[str] = None) -> LabelingHeuristic:
        """Parse a human-written seed rule string into a labeling heuristic."""
        grammar = self._grammar_by_name(grammar_name)
        expression = grammar.parse(text)
        coverage = self.index.coverage_of_expression(
            grammar.name, expression, self.corpus
        )
        return LabelingHeuristic(grammar=grammar, expression=expression).with_coverage(coverage)

    def _grammar_by_name(self, grammar_name: Optional[str]) -> HeuristicGrammar:
        if grammar_name is None:
            return self.grammars[0]
        for grammar in self.grammars:
            if grammar.name == grammar_name:
                return grammar
        raise ConfigurationError(f"unknown grammar {grammar_name!r}")

    def start(
        self,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Initialize a run from seed rules and/or seed positive sentences.

        At least one source of seeds is required; the paper assumes the seed
        generates at least two positive instances.
        """
        rules: List[LabelingHeuristic] = list(seed_rules or [])
        for text in seed_rule_texts or []:
            rules.append(self.parse_seed_rule(text))
        rules = seed_candidates(self.index, rules) if rules else []

        self.rule_set = RuleSet()
        self.positive_ids = set()
        for rule in rules:
            self.rule_set.add(rule)
            self.positive_ids.update(rule.coverage)
        if seed_positive_ids:
            self.positive_ids.update(int(i) for i in seed_positive_ids)
        if not self.positive_ids:
            raise ConfigurationError(
                "seeds produced no positive instances; provide a seed rule with "
                "non-empty coverage or explicit seed sentence ids"
            )

        self.trainer = ClassifierTrainer(
            self.corpus, self.featurizer, config=self.config.classifier
        )
        self.benefit = BenefitScorer(
            scores=self.trainer.score_corpus(), covered_ids=self.positive_ids
        )
        self.updater = ScoreUpdater(
            self.trainer, self.benefit, retrain_every=self.config.retrain_every
        )
        with self._phase("initial_training"):
            self.updater.initialize(self.positive_ids)

        with self._phase("hierarchy_generation"):
            self.hierarchy = self._build_hierarchy()

        seeds_for_traversal = rules or self._fallback_seed_rules()
        context = TraversalContext(
            hierarchy=self.hierarchy,
            benefit=self.benefit,
            neighbours=self._neighbour_provider,
            benefit_cutoff=self.config.benefit_cutoff,
        )
        self.traversal = make_traversal(
            self.config.traversal, context, seeds_for_traversal, tau=self.config.tau
        )
        self.history = []
        self._in_flight = set()
        self._started = True

    def _fallback_seed_rules(self) -> List[LabelingHeuristic]:
        """When only seed sentences are given, derive seed rules from them."""
        ranked = self.index.top_by_overlap(self.positive_ids, limit=5)
        if not ranked:
            raise ConfigurationError(
                "could not derive seed rules from the given seed sentences"
            )
        return [self.index.heuristic(key) for key, _ in ranked]

    # -------------------------------------------------------------- internals
    def _build_hierarchy(self) -> RuleHierarchy:
        options = CandidateOptions(
            num_candidates=self.config.num_candidates,
            min_coverage=self.config.min_coverage,
        )
        candidates = generate_candidates(self.index, self.positive_ids, options)
        return build_hierarchy(
            candidates, index=self.index, covered_ids=self.rule_set.covered_mask
        )

    def _refresh_hierarchy_incremental(self, new_positive_ids: Set[int]) -> RuleHierarchy:
        """Update the live hierarchy after new positives instead of rebuilding.

        Only index nodes whose overlap with ``P`` changed — exactly those
        covering one of the newly accepted positives, found via the index's
        sentence→keys inverted map — are (re)considered as candidates. The
        existing hierarchy is then cleaned of rules that no longer add
        coverage. Per accepted rule this costs time proportional to the new
        positives' sketch sizes, not to regenerating ``num_candidates``
        heuristics from scratch (the ``"full"`` mode).
        """
        hierarchy = self.hierarchy
        if hierarchy is None or not new_positive_ids:
            return self._build_hierarchy()
        affected: Set = set()
        for sentence_id in new_positive_ids:
            affected.update(self.index.keys_covering(sentence_id))
        queried_keys = {
            (rule.grammar.name, rule.expression)
            for rule in self.traversal.context.queried
        } if self.traversal is not None else set()
        candidates: List[LabelingHeuristic] = []
        for key in affected:
            node = self.index.node(key)
            if node.count < self.config.min_coverage:
                continue
            if key in queried_keys:
                continue
            rule = self.index.heuristic(key)
            if rule in hierarchy:
                continue
            candidates.append(rule)
        # Drop exhausted rules first so freed slots count against the cap.
        hierarchy.cleanup(self.rule_set.covered_mask)
        # Mirror the full path's constraints: highest positive-overlap first,
        # skip coverage-duplicates of existing candidates (diversity), and
        # never grow the hierarchy past num_candidates.
        positives_mask = self.benefit.covered_mask if self.benefit is not None else None
        overlaps: Dict[LabelingHeuristic, int] = {}
        if positives_mask is not None:
            # One fused kernel over every view-backed candidate instead of a
            # mask probe per rule inside the sort key.
            viewed = [r for r in candidates if r.coverage_view is not None]
            if viewed:
                counts = batched_overlap_counts(
                    [r.coverage_view for r in viewed], positives_mask
                )
                overlaps = dict(zip(viewed, counts.tolist()))
        def overlap(rule: LabelingHeuristic) -> int:
            cached = overlaps.get(rule)
            if cached is not None:
                return cached
            view = rule.coverage_view
            if view is not None and positives_mask is not None:
                return view.overlap_with(positives_mask)
            return len(set(rule.coverage) & self.positive_ids)
        candidates.sort(key=lambda r: (-overlap(r), -r.coverage_size, r.render()))
        seen_coverages = {
            rule.coverage_view if rule.coverage_view is not None
            else frozenset(rule.coverage)
            for rule in hierarchy.rules()
        }
        budget = max(0, self.config.num_candidates - len(hierarchy))
        fresh: List[LabelingHeuristic] = []
        for rule in candidates:
            if len(fresh) >= budget:
                break
            signature = rule.coverage_view or frozenset(rule.coverage)
            if signature in seen_coverages:
                continue
            seen_coverages.add(signature)
            fresh.append(rule)
        attach_candidates(hierarchy, fresh)
        return hierarchy

    def _neighbour_provider(self, rule: LabelingHeuristic, direction: str) -> List[LabelingHeuristic]:
        return expand_rule_neighbourhood(
            rule,
            self.index,
            direction,
            corpus=self.corpus,
            min_coverage=self.config.min_coverage,
        )

    def sample_for_query(self, rule: LabelingHeuristic) -> List[int]:
        """Sentence ids shown to the annotator as examples for ``rule``."""
        coverage = sorted(rule.coverage)
        if len(coverage) <= self.config.oracle_sample_size:
            return coverage
        chosen = self._rng.choice(
            len(coverage), size=self.config.oracle_sample_size, replace=False
        )
        return [coverage[i] for i in sorted(chosen)]

    def _sample_for_query(self, rule: LabelingHeuristic) -> List[int]:
        """Deprecated alias of :meth:`sample_for_query` (kept for callers that
        predate the public name)."""
        return self.sample_for_query(rule)

    # ------------------------------------------------------------------- step
    def propose_next(self) -> Optional[LabelingHeuristic]:
        """The next rule Darwin would submit to the oracle (None if exhausted).

        Rules marked in-flight (dispatched but unanswered) are never proposed
        again, so repeated calls interleaved with :meth:`mark_in_flight` yield
        distinct questions.
        """
        self._require_started()
        if self.updater.needs_hierarchy_refresh:
            with self._phase("hierarchy_generation", phase="hierarchy_refresh"):
                if self.config.hierarchy_refresh == "incremental":
                    self.hierarchy = self._refresh_hierarchy_incremental(
                        self.updater.pending_new_positive_ids
                    )
                else:
                    self.hierarchy = self._build_hierarchy()
            self.traversal.on_hierarchy_update(self.hierarchy)
            self.updater.acknowledge_hierarchy_refresh()
        with self._phase("traversal", phase="propose"):
            return self.traversal.propose()

    # ------------------------------------------------- concurrent dispatch API
    @property
    def in_flight(self) -> Set[LabelingHeuristic]:
        """Rules dispatched to annotators but not yet answered (a copy)."""
        return set(self._in_flight)

    def mark_in_flight(self, rule: LabelingHeuristic) -> None:
        """Reserve ``rule`` so subsequent proposals never duplicate it.

        In-flight rules join the traversal's queried set (every selection path
        filters on it); :meth:`apply_answer` finalizes the reservation and
        :meth:`release_in_flight` cancels it.
        """
        self._require_started()
        self.traversal.context.queried.add(rule)
        self._in_flight.add(rule)

    def release_in_flight(self, rule: LabelingHeuristic) -> None:
        """Cancel an in-flight reservation, making the rule proposable again."""
        if rule in self._in_flight:
            self._in_flight.discard(rule)
            self.traversal.context.queried.discard(rule)

    def propose_batch(self, limit: int) -> List[LabelingHeuristic]:
        """Up to ``limit`` distinct rules, each marked in-flight.

        This is the propose-many half of the crowd coordinator's contract:
        every returned rule is reserved until answered (or released), so two
        annotators can never be asked to verify the same proposal.
        """
        proposals: List[LabelingHeuristic] = []
        for _ in range(max(0, limit)):
            rule = self.propose_next()
            if rule is None:
                break
            self.mark_in_flight(rule)
            proposals.append(rule)
        return proposals

    # ------------------------------------------------------------ answer flow
    def apply_answer(
        self,
        rule: LabelingHeuristic,
        is_useful: bool,
        defer_update: bool = False,
    ) -> None:
        """Commit an oracle answer to the rule set and traversal state.

        With ``defer_update=True`` an accepted rule still joins ``R`` and
        grows ``P`` immediately (so later proposals see the new coverage), but
        the classifier retrain and hierarchy-refresh signal are buffered until
        :meth:`flush_updates` — the batched-apply half of the crowd
        coordinator's contract.
        """
        self._require_started()
        self.traversal.context.queried.add(rule)
        self._in_flight.discard(rule)
        if is_useful:
            self._obs_answer_yes.inc()
            new_positives = rule.new_positives(self.positive_ids)
            self.rule_set.add(rule)
            self.positive_ids.update(rule.coverage)
            with self._phase("score_update", phase="apply"):
                self.updater.on_accept(
                    self.positive_ids, new_positives, defer=defer_update
                )
        else:
            self._obs_answer_no.inc()
            self.updater.on_reject()
        self.traversal.feedback(rule, is_useful)

    def flush_updates(self) -> int:
        """Apply deferred retrain/refresh work; returns answers flushed."""
        self._require_started()
        with self._phase("score_update", phase="flush"):
            return self.updater.flush(self.positive_ids)

    @property
    def pending_update_count(self) -> int:
        """Accepted answers applied with ``defer_update`` and not yet flushed."""
        return self.updater.pending_update_count if self.updater else 0

    def log_answer(
        self,
        rule: LabelingHeuristic,
        is_useful: bool,
        evaluation_positive_ids: Optional[Set[int]] = None,
    ) -> QueryRecord:
        """Append (and return) the history record for an applied answer."""
        self._require_started()
        truth = evaluation_positive_ids
        if truth is None:
            truth = self._truth_ids
        recall = self.rule_set.recall(truth) if truth else 0.0
        precision = self.rule_set.precision(truth) if truth else 0.0
        f1 = self.updater.classifier_f1(truth) if truth else 0.0
        record = QueryRecord(
            question_number=len(self.history) + 1,
            rule=rule.render(),
            grammar=rule.grammar.name,
            answer=is_useful,
            rule_coverage=rule.coverage_size,
            covered=self.rule_set.coverage_size(),
            recall=recall,
            precision=precision,
            classifier_f1=f1,
        )
        self.history.append(record)
        return record

    def record_answer(
        self,
        rule: LabelingHeuristic,
        is_useful: bool,
        evaluation_positive_ids: Optional[Set[int]] = None,
        defer_update: bool = False,
    ) -> QueryRecord:
        """Incorporate an oracle answer and append a history record."""
        self.apply_answer(rule, is_useful, defer_update=defer_update)
        return self.log_answer(
            rule, is_useful, evaluation_positive_ids=evaluation_positive_ids
        )

    def _require_started(self) -> None:
        if not self._started:
            raise ConfigurationError("call start() with seeds before stepping Darwin")

    # ---------------------------------------------------------- state protocol
    def resolve_rule_ref(self, ref: Dict[str, str]) -> LabelingHeuristic:
        """Rebuild the :class:`LabelingHeuristic` a checkpoint ref names.

        The coverage representation matches what the live run held: rules
        materialized by the corpus index come back with the interned coverage
        view (shared identity and all), rules the index never saw are
        re-evaluated by a corpus scan into a frozenset — exactly the two
        paths proposals take in a running session.
        """
        cache_key = (ref["g"], ref["e"])
        cached = self._ref_cache.get(cache_key)
        if cached is not None:
            return cached
        grammar = self._grammar_by_name(ref["g"])
        expression = grammar.parse(ref["e"])
        coverage = self.index.coverage_of_expression(
            grammar.name, expression, self.corpus
        )
        rule = LabelingHeuristic(
            grammar=grammar, expression=expression
        ).with_coverage(coverage)
        self._ref_cache[cache_key] = rule
        return rule

    def to_state(self, bundle) -> Dict[str, object]:
        """Serialize every mutable piece of the session (started runs only).

        Covers the ISSUE's state layers: accepted rules and ``P``, the live
        hierarchy (nodes *and* edges), the traversal pools/mode, the queried
        and in-flight bookkeeping, the score updater's counters, the trainer
        (scores, RNG, classifier weights), the query history, and Darwin's
        own sampling RNG. Arrays go into ``bundle``; the returned dict is
        JSON-able. In-flight rules are recorded but deliberately restored as
        *released*: their votes are lost with the process, so a resumed
        session must be free to re-propose them.
        """
        from ..engine.state import rng_state_dict

        self._require_started()
        positive_ids = np.fromiter(
            sorted(self.positive_ids), dtype=np.int64, count=len(self.positive_ids)
        )
        in_flight = set(self._in_flight)
        queried = [
            rule.ref()
            for rule in self.traversal.context.queried
            if rule not in in_flight
        ]
        return {
            "positive_ids": bundle.put("darwin/positive_ids", positive_ids),
            "rule_set": self.rule_set.to_state(),
            "hierarchy": self.hierarchy.to_state(),
            # The registry key the traversal was created under (custom
            # strategies may not define a `name` class attribute, and their
            # class-level name need not match their registration).
            "traversal": {
                "kind": self.config.traversal,
                "state": self.traversal.state_dict(),
            },
            "queried": sorted(queried, key=lambda ref: (ref["g"], ref["e"])),
            # repro: allow[RPR002] in-flight rules are recorded for manifest
            # inspection only; restore releases them (votes die with the
            # process) so a resumed session may re-propose them
            "in_flight": sorted(
                (rule.ref() for rule in in_flight),
                key=lambda ref: (ref["g"], ref["e"]),
            ),
            "updater": self.updater.state_dict(),
            "trainer": self.trainer.state_dict(bundle, prefix="darwin/trainer/"),
            "history": [asdict(record) for record in self.history],
            "rng": rng_state_dict(self._rng),
        }

    def restore_state(self, state: Dict[str, object], bundle) -> None:
        """Restore :meth:`to_state` output, leaving this instance started.

        The restored session replays question-for-question identically to
        the uninterrupted run: hierarchy, pools, scores, counters, and RNG
        streams all resume from their serialized values.
        """
        from ..engine.state import restore_rng

        resolve = self.resolve_rule_ref
        self.positive_ids = set(
            np.asarray(bundle.get(state["positive_ids"])).tolist()
        )
        self.rule_set = RuleSet.from_state(state["rule_set"], resolve)
        self.trainer = ClassifierTrainer(
            self.corpus, self.featurizer, config=self.config.classifier
        )
        self.trainer.load_state(state["trainer"], bundle)
        self.benefit = BenefitScorer(
            scores=self.trainer.score_corpus(), covered_ids=self.positive_ids
        )
        self.updater = ScoreUpdater(
            self.trainer, self.benefit, retrain_every=self.config.retrain_every
        )
        self.updater.load_state(state["updater"])
        self.hierarchy = RuleHierarchy.from_state(state["hierarchy"], resolve)
        traversal_state = state["traversal"]
        context = TraversalContext(
            hierarchy=self.hierarchy,
            benefit=self.benefit,
            neighbours=self._neighbour_provider,
            benefit_cutoff=self.config.benefit_cutoff,
        )
        seeds = [
            resolve(ref)
            for ref in traversal_state["state"].get("seed_rules", [])
        ]
        self.traversal = make_traversal(
            traversal_state["kind"], context, seeds, tau=self.config.tau
        )
        self.traversal.load_state(traversal_state["state"], resolve)
        context.queried = {resolve(ref) for ref in state.get("queried", [])}
        self.history = [QueryRecord(**record) for record in state.get("history", [])]
        self._in_flight = set()
        self._rng = restore_rng(state["rng"])
        self._started = True

    # -------------------------------------------------------------------- run
    def run(
        self,
        oracle: Oracle,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
        budget: Optional[int] = None,
        evaluation_positive_ids: Optional[Set[int]] = None,
    ) -> DarwinResult:
        """Run the full interactive loop against ``oracle``.

        Args:
            oracle: The rule verifier (wrapped in a budget tracker here).
            seed_rules / seed_rule_texts / seed_positive_ids: Seeds; see
                :meth:`start`.
            budget: Overrides ``config.budget`` when given.
            evaluation_positive_ids: Ground-truth positives used only for the
                history records (defaults to the corpus labels when present).

        Returns:
            A :class:`DarwinResult` with the accepted rules and history.
        """
        self.start(
            seed_rules=seed_rules,
            seed_rule_texts=seed_rule_texts,
            seed_positive_ids=seed_positive_ids,
        )
        query_budget = budget or self.config.budget
        if isinstance(oracle, BudgetedOracle):
            # A pre-wrapped oracle carries its own budget, which may disagree
            # with budget/config.budget; honour the tighter of the two so the
            # loop condition and the wrapper can never get out of sync.
            budgeted = oracle
            query_budget = min(query_budget, budgeted.budget)
        else:
            budgeted = BudgetedOracle(base=oracle, budget=query_budget)
        while budgeted.queries_used < query_budget:
            rule = self.propose_next()
            if rule is None:
                break
            samples = self._sample_for_query(rule)
            try:
                with self._phase("oracle_answer"):
                    answer = budgeted.ask(rule, samples)
            except BudgetExhaustedError:
                break
            self.record_answer(
                rule, answer.is_useful, evaluation_positive_ids=evaluation_positive_ids
            )
        return DarwinResult(
            rule_set=self.rule_set,
            covered_ids=self.rule_set.covered_ids,
            history=list(self.history),
            queries_used=budgeted.queries_used,
            timings=self.stopwatch.as_dict(),
            config=self.config,
        )
