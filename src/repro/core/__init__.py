"""Darwin's core: oracles, benefit scoring, candidate generation, traversal.

The public entry point is :class:`repro.core.darwin.Darwin` (Algorithm 1),
re-exported here together with the pieces experiments commonly need.
"""

from .oracle import (
    Oracle,
    OracleQuery,
    OracleAnswer,
    GroundTruthOracle,
    SampleBasedOracle,
    NoisyOracle,
    MajorityVoteOracle,
    BudgetedOracle,
)
from .benefit import BenefitScorer
from .candidates import generate_candidates
from .hierarchy_builder import build_hierarchy
from .darwin import Darwin, DarwinResult, QueryRecord
from .session import LabelingSession

__all__ = [
    "Oracle",
    "OracleQuery",
    "OracleAnswer",
    "GroundTruthOracle",
    "SampleBasedOracle",
    "NoisyOracle",
    "MajorityVoteOracle",
    "BudgetedOracle",
    "BenefitScorer",
    "generate_candidates",
    "build_hierarchy",
    "Darwin",
    "DarwinResult",
    "QueryRecord",
    "LabelingSession",
]
