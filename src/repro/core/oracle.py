"""Oracle abstractions (Definition 4) and annotator simulations.

An oracle answers YES/NO to "is this rule adequately precise?" given the rule
and a few sample sentences from its coverage. The paper simulates oracles from
ground truth (YES iff precision >= 0.8), studies noisy human annotators who see
only 5 samples, and aggregates crowd answers by majority vote. All three are
implemented here, along with a budget-tracking wrapper used by every
experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..errors import BudgetExhaustedError, OracleError
from ..rules.heuristic import LabelingHeuristic
from ..text.corpus import Corpus
from ..utils.rng import derive_rng


@dataclass(frozen=True)
class OracleQuery:
    """One question posed to an oracle.

    Attributes:
        rule: The candidate labeling heuristic being verified.
        sample_ids: The sentence ids shown to the annotator as examples.
        rendered: Human-readable rule string (what Figure 2 displays).
    """

    rule: LabelingHeuristic
    sample_ids: Sequence[int]
    rendered: str


@dataclass(frozen=True)
class OracleAnswer:
    """The oracle's response to a query.

    Attributes:
        is_useful: True for YES (the rule is adequately precise).
        true_precision: The rule's precision over its full coverage, when the
            oracle has access to ground truth (used for analysis only).
    """

    is_useful: bool
    true_precision: Optional[float] = None


class Oracle(ABC):
    """Abstract YES/NO rule verifier."""

    @abstractmethod
    def answer(self, query: OracleQuery) -> OracleAnswer:
        """Answer ``query``."""

    def ask(self, rule: LabelingHeuristic, sample_ids: Sequence[int]) -> OracleAnswer:
        """Convenience wrapper constructing the :class:`OracleQuery`."""
        query = OracleQuery(rule=rule, sample_ids=tuple(sample_ids), rendered=rule.render())
        return self.answer(query)

    # -------------------------------------------------------- state protocol
    def state_dict(self) -> dict:
        """JSON-able snapshot of any mutable answering state (RNG streams).

        Stateless oracles (the default) return ``{}``. Stochastic oracles
        override this so an engine checkpoint can resume their answer stream
        exactly where it stopped — the checkpoint/resume replay guarantee
        covers noisy oracles only through this hook.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless oracles)."""
        return None


class GroundTruthOracle(Oracle):
    """Simulated perfect annotator (Section 4.1).

    Answers YES iff at least ``precision_threshold`` of the rule's *entire*
    coverage set is ground-truth positive.
    """

    def __init__(self, corpus: Corpus, precision_threshold: float = 0.8) -> None:
        if not corpus.has_labels():
            raise OracleError("GroundTruthOracle requires a fully labeled corpus")
        if not 0.0 < precision_threshold <= 1.0:
            raise OracleError("precision_threshold must be in (0, 1]")
        self.positive_ids: Set[int] = corpus.positive_ids()
        self.precision_threshold = precision_threshold

    def answer(self, query: OracleQuery) -> OracleAnswer:
        precision = query.rule.precision(self.positive_ids)
        return OracleAnswer(
            is_useful=precision >= self.precision_threshold,
            true_precision=precision,
        )


class SampleBasedOracle(Oracle):
    """Annotator who inspects only the sample sentences shown in the query.

    This models the human error sources the paper identifies in Section 4.5:
    with 5 samples, a 60%-precise rule can look 80%-precise by chance, and an
    annotator occasionally misreads an individual example. The latter is
    controlled by ``label_noise`` — the probability of judging one sample
    sentence incorrectly — which confuses annotators on *borderline* rules
    while leaving obviously-bad rules rejected (a symmetric answer-flip model
    would accept terrible rules a few percent of the time, which real
    annotators do not do).
    """

    def __init__(
        self,
        corpus: Corpus,
        precision_threshold: float = 0.8,
        label_noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not corpus.has_labels():
            raise OracleError("SampleBasedOracle requires a fully labeled corpus")
        if not 0.0 <= label_noise <= 1.0:
            raise OracleError("label_noise must be in [0, 1]")
        self.positive_ids: Set[int] = corpus.positive_ids()
        self.precision_threshold = precision_threshold
        self.label_noise = label_noise
        self._rng = derive_rng(seed, "sample-oracle")

    def answer(self, query: OracleQuery) -> OracleAnswer:
        sample_ids = list(query.sample_ids)
        if not sample_ids:
            sample_ids = list(query.rule.coverage)
        if not sample_ids:
            return OracleAnswer(is_useful=False, true_precision=0.0)
        hits = 0
        for sid in sample_ids:
            judged_positive = sid in self.positive_ids
            if self.label_noise and self._rng.random() < self.label_noise:
                judged_positive = not judged_positive
            hits += int(judged_positive)
        observed_precision = hits / len(sample_ids)
        true_precision = query.rule.precision(self.positive_ids)
        return OracleAnswer(
            is_useful=observed_precision >= self.precision_threshold,
            true_precision=true_precision,
        )

    def state_dict(self) -> dict:
        from ..engine.state import rng_state_dict

        return {"rng": rng_state_dict(self._rng)}

    def load_state(self, state: dict) -> None:
        from ..engine.state import restore_rng

        if "rng" in state:
            self._rng = restore_rng(state["rng"])


class NoisyOracle(Oracle):
    """Wraps another oracle and flips its answer with probability ``flip_prob``."""

    def __init__(self, base: Oracle, flip_prob: float = 0.1, seed: int = 0) -> None:
        if not 0.0 <= flip_prob <= 1.0:
            raise OracleError("flip_prob must be in [0, 1]")
        self.base = base
        self.flip_prob = flip_prob
        self._rng = derive_rng(seed, "noisy-oracle")

    def answer(self, query: OracleQuery) -> OracleAnswer:
        answer = self.base.answer(query)
        if self._rng.random() < self.flip_prob:
            return OracleAnswer(
                is_useful=not answer.is_useful, true_precision=answer.true_precision
            )
        return answer

    def state_dict(self) -> dict:
        from ..engine.state import rng_state_dict

        return {"rng": rng_state_dict(self._rng), "base": self.base.state_dict()}

    def load_state(self, state: dict) -> None:
        from ..engine.state import restore_rng

        if "rng" in state:
            self._rng = restore_rng(state["rng"])
        self.base.load_state(state.get("base", {}))


class MajorityVoteOracle(Oracle):
    """Aggregates an odd number of (noisy) annotators by majority vote.

    Models the paper's crowd-sourcing setup (3 workers per rule at 2 cents per
    answer); :attr:`total_votes` supports the cost analysis in Section 4.3.
    """

    def __init__(self, annotators: Sequence[Oracle]) -> None:
        if not annotators:
            raise OracleError("at least one annotator is required")
        if len(annotators) % 2 == 0:
            raise OracleError("use an odd number of annotators to avoid ties")
        self.annotators = list(annotators)
        self.total_votes = 0

    def answer(self, query: OracleQuery) -> OracleAnswer:
        votes = [annotator.answer(query) for annotator in self.annotators]
        self.total_votes += len(votes)
        yes_votes = sum(1 for vote in votes if vote.is_useful)
        precisions = [v.true_precision for v in votes if v.true_precision is not None]
        true_precision = precisions[0] if precisions else None
        return OracleAnswer(
            is_useful=yes_votes * 2 > len(votes), true_precision=true_precision
        )

    def state_dict(self) -> dict:
        return {
            "total_votes": self.total_votes,
            "annotators": [annotator.state_dict() for annotator in self.annotators],
        }

    def load_state(self, state: dict) -> None:
        self.total_votes = int(state.get("total_votes", 0))
        for annotator, annotator_state in zip(
            self.annotators, state.get("annotators", [])
        ):
            annotator.load_state(annotator_state)


@dataclass
class BudgetedOracle(Oracle):
    """Budget-tracking wrapper: raises once more than ``budget`` queries are asked.

    Also records the full query/answer log used by the experiment harness.
    """

    base: Oracle
    budget: int
    queries: List[OracleQuery] = field(default_factory=list)
    answers: List[OracleAnswer] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise OracleError("budget must be positive")

    @property
    def queries_used(self) -> int:
        """Number of queries answered so far."""
        return len(self.queries)

    @property
    def remaining(self) -> int:
        """Queries left in the budget."""
        return self.budget - self.queries_used

    def answer(self, query: OracleQuery) -> OracleAnswer:
        if self.queries_used >= self.budget:
            raise BudgetExhaustedError(
                f"oracle budget of {self.budget} queries exhausted"
            )
        answer = self.base.answer(query)
        self.queries.append(query)
        self.answers.append(answer)
        return answer

    def state_dict(self) -> dict:
        # The query/answer log is analysis output, not answering state; only
        # the wrapped oracle's stream needs to survive a checkpoint.
        return {"base": self.base.state_dict()}

    def load_state(self, state: dict) -> None:
        self.base.load_state(state.get("base", {}))
