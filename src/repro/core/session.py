"""Interactive labeling session: Darwin with a human in the loop.

:class:`LabelingSession` exposes Darwin's step API in the shape an annotation
UI (or a command-line prompt, as in ``examples/interactive_session.py``) needs:
ask for the next question, show the rule plus a few matching sentences, submit
the YES/NO answer, repeat until the budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import BudgetExhaustedError
from ..rules.heuristic import LabelingHeuristic
from .darwin import Darwin, DarwinResult, QueryRecord


@dataclass(frozen=True)
class PendingQuestion:
    """A question waiting for the annotator's answer.

    Attributes:
        rule: The candidate rule being verified.
        rendered: The rule as a human-readable string.
        example_texts: Texts of a few sentences matching the rule (what
            Figure 2 shows the annotator).
    """

    rule: LabelingHeuristic
    rendered: str
    example_texts: Sequence[str]


class LabelingSession:
    """Step-by-step interactive wrapper around :class:`Darwin`."""

    def __init__(
        self,
        darwin: Darwin,
        budget: Optional[int] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.darwin = darwin
        self.budget = budget or darwin.config.budget
        self._pending: Optional[PendingQuestion] = None
        self._questions_asked = 0
        darwin.start(
            seed_rules=seed_rules,
            seed_rule_texts=seed_rule_texts,
            seed_positive_ids=seed_positive_ids,
        )

    # -------------------------------------------------------------- stepping
    @property
    def questions_asked(self) -> int:
        """Number of questions answered so far."""
        return self._questions_asked

    @property
    def questions_remaining(self) -> int:
        """Questions left in the budget."""
        return max(0, self.budget - self._questions_asked)

    @property
    def is_done(self) -> bool:
        """True when the budget is exhausted."""
        return self.questions_remaining == 0

    def next_question(self) -> Optional[PendingQuestion]:
        """The next question for the annotator (None when exhausted/done)."""
        if self.is_done:
            return None
        if self._pending is not None:
            return self._pending
        rule = self.darwin.propose_next()
        if rule is None:
            return None
        sample_ids = self.darwin._sample_for_query(rule)
        examples = [self.darwin.corpus[sid].text for sid in sample_ids]
        self._pending = PendingQuestion(
            rule=rule, rendered=rule.render(), example_texts=tuple(examples)
        )
        return self._pending

    def submit_answer(self, is_useful: bool) -> QueryRecord:
        """Record the annotator's YES/NO answer to the pending question."""
        if self._pending is None:
            raise BudgetExhaustedError("no pending question; call next_question() first")
        record = self.darwin.record_answer(self._pending.rule, is_useful)
        self._pending = None
        self._questions_asked += 1
        return record

    # --------------------------------------------------------------- results
    def accepted_rules(self) -> List[str]:
        """Rules accepted so far, rendered."""
        return self.darwin.rule_set.describe()

    def result(self) -> DarwinResult:
        """Snapshot the session as a :class:`DarwinResult`."""
        return DarwinResult(
            rule_set=self.darwin.rule_set,
            covered_ids=self.darwin.rule_set.covered_ids,
            history=list(self.darwin.history),
            queries_used=self._questions_asked,
            timings=self.darwin.stopwatch.as_dict(),
            config=self.darwin.config,
        )
