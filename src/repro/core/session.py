"""Interactive labeling session: Darwin with a human in the loop.

:class:`LabelingSession` exposes Darwin's step API in the shape an annotation
UI (or a command-line prompt, as in ``examples/interactive_session.py``) needs:
ask for the next question, show the rule plus a few matching sentences, submit
the YES/NO answer, repeat until the budget runs out.

Since the crowd subsystem landed, the session is a single-annotator client of
the same :class:`~repro.crowd.CrowdCoordinator` that serves concurrent crowds
(K=1, redundancy 1, batch size 1), so the interactive path and the crowd path
can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import CrowdConfig
from ..errors import BudgetExhaustedError, ConfigurationError
from ..rules.heuristic import LabelingHeuristic
from ..core.oracle import BudgetedOracle, Oracle
from .darwin import Darwin, DarwinResult, QueryRecord


@dataclass(frozen=True)
class PendingQuestion:
    """A question waiting for the annotator's answer.

    Attributes:
        rule: The candidate rule being verified.
        rendered: The rule as a human-readable string.
        example_texts: Texts of a few sentences matching the rule (what
            Figure 2 shows the annotator).
        sample_ids: Sentence ids of the examples (the oracle sample).
    """

    rule: LabelingHeuristic
    rendered: str
    example_texts: Sequence[str]
    sample_ids: Tuple[int, ...] = ()


class LabelingSession:
    """Step-by-step interactive wrapper around :class:`Darwin`.

    Args:
        darwin: The Darwin instance to drive (started here from the seeds).
        budget: Maximum questions for this session. Reconciled against
            ``darwin.config.budget`` (and, when ``oracle`` is a pre-wrapped
            :class:`BudgetedOracle`, against its remaining budget) by taking
            the tightest bound, so no component can out-ask another.
        oracle: Optional auto-answering oracle; when given,
            :meth:`submit_answer` may be called without an argument.
        seed_rule_texts / seed_rules / seed_positive_ids: Seeds; see
            :meth:`Darwin.start`. May be omitted when ``darwin`` is already
            started (e.g. restored from an engine checkpoint) — the session
            then continues the existing run instead of reseeding it.
    """

    def __init__(
        self,
        darwin: Darwin,
        budget: Optional[int] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_rules: Optional[Sequence[LabelingHeuristic]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
        oracle: Optional[Oracle] = None,
    ) -> None:
        from ..crowd.coordinator import CrowdCoordinator

        self.darwin = darwin
        self.oracle = oracle
        self._pending: Optional[PendingQuestion] = None
        self._pending_assignment = None
        self._questions_asked = 0
        has_seeds = bool(seed_rules or seed_rule_texts or seed_positive_ids)
        if has_seeds or not getattr(darwin, "_started", False):
            darwin.start(
                seed_rules=seed_rules,
                seed_rule_texts=seed_rule_texts,
                seed_positive_ids=seed_positive_ids,
            )
        # Budget reconciliation (the Darwin.run double-budget fix, applied
        # here too): an explicit session budget and the config budget must not
        # disagree with a pre-wrapped BudgetedOracle's own allowance — honour
        # the tightest of the bounds in play. Computed after the start
        # decision: a continued session (started darwin, no reseed) only gets
        # what the config budget has left after the questions already in the
        # run's history, so resuming can never out-ask the original budget.
        config_remaining = max(0, darwin.config.budget - len(darwin.history))
        session_budget = min(budget or config_remaining, config_remaining)
        if isinstance(oracle, BudgetedOracle):
            session_budget = min(session_budget, oracle.remaining)
        if session_budget <= 0:
            raise ConfigurationError("session budget must be positive")
        self.budget = session_budget
        # A single-annotator crowd: one question in flight, every answer
        # applied and flushed immediately — the serial Darwin loop, served
        # through the shared dispatcher.
        self._coordinator = CrowdCoordinator(
            darwin,
            CrowdConfig(
                num_annotators=1,
                redundancy=1,
                batch_size=1,
                budget=self.budget,
                annotator_latency=0.0,
            ),
        )

    # -------------------------------------------------------------- stepping
    @property
    def questions_asked(self) -> int:
        """Number of questions answered so far."""
        return self._questions_asked

    @property
    def questions_remaining(self) -> int:
        """Questions left in the budget."""
        return max(0, self.budget - self._questions_asked)

    @property
    def is_done(self) -> bool:
        """True when the budget is exhausted."""
        return self.questions_remaining == 0

    def next_question(self) -> Optional[PendingQuestion]:
        """The next question for the annotator (None when exhausted/done)."""
        if self.is_done:
            return None
        if self._pending is not None:
            return self._pending
        assignment = self._coordinator.request_question(0)
        if assignment is None:
            return None
        self._pending_assignment = assignment
        self._pending = PendingQuestion(
            rule=assignment.rule,
            rendered=assignment.rendered,
            example_texts=assignment.example_texts,
            sample_ids=assignment.sample_ids,
        )
        return self._pending

    def submit_answer(self, is_useful: Optional[bool] = None) -> QueryRecord:
        """Record the annotator's YES/NO answer to the pending question.

        When the session was built with an ``oracle``, ``is_useful`` may be
        omitted and the oracle answers in the annotator's place.
        """
        if self._pending is None or self._pending_assignment is None:
            raise BudgetExhaustedError("no pending question; call next_question() first")
        if is_useful is None:
            if self.oracle is None:
                raise ConfigurationError(
                    "no oracle attached to the session; pass is_useful explicitly"
                )
            answer = self.oracle.ask(self._pending.rule, self._pending.sample_ids)
            is_useful = answer.is_useful
        record = self._coordinator.submit_answer(
            self._pending_assignment, bool(is_useful)
        )
        assert record is not None  # redundancy=1 commits on the first vote
        self._pending = None
        self._pending_assignment = None
        self._questions_asked += 1
        return record

    # --------------------------------------------------------------- results
    def accepted_rules(self) -> List[str]:
        """Rules accepted so far, rendered."""
        return self.darwin.rule_set.describe()

    def result(self) -> DarwinResult:
        """Snapshot the session as a :class:`DarwinResult`."""
        return self._coordinator.result().darwin_result
