"""Candidate-heuristic generation (Algorithm 2).

Starting from the virtual root ``*`` of the corpus index, the generator
repeatedly expands the children of the most recently selected candidate and
greedily picks the candidate with the largest coverage over the positives
discovered so far. The result is a set of ``k`` promising heuristics that at
least partially overlap the known positives, which seeds the hierarchy.

The paper sorts the candidate list each iteration; because the overlap of a
fixed candidate with a fixed positive set never changes inside one invocation,
an equivalent (and much faster) implementation uses a max-heap keyed by
``(overlap with P, total coverage)``. Overlap counts go through the index's
columnar coverage layer: the positive set is turned into one boolean mask up
front and each node's interned id array is probed against it, so no per-node
Python-set intersections are materialized. Optional diversity constraints
skip candidates that are near-duplicates of already selected ones — detected
by interned-view identity, which is O(1) instead of hashing a frozen copy of
every candidate's coverage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..index.coverage import membership_mask
from ..index.trie_index import ROOT_KEY, CorpusIndex
from ..index.sketch import SketchKey
from ..rules.heuristic import LabelingHeuristic


@dataclass(frozen=True)
class CandidateOptions:
    """Knobs for candidate generation.

    Attributes:
        num_candidates: ``k``, the number of heuristics to return.
        min_coverage: Skip heuristics covering fewer sentences than this.
        min_positive_overlap: Skip heuristics overlapping fewer known positives
            than this (1 keeps the paper's "at least partial overlap" notion).
        max_children_per_expansion: Cap on children enqueued per expansion,
            protecting against hub nodes with tens of thousands of children.
        require_diversity: Skip a candidate whose coverage is identical to an
            already-selected candidate's coverage (the paper's diversity
            constraint in its simplest form).
    """

    num_candidates: int = 2000
    min_coverage: int = 2
    min_positive_overlap: int = 1
    max_children_per_expansion: int = 5000
    require_diversity: bool = True


def generate_candidates(
    index: CorpusIndex,
    positive_ids: Set[int],
    options: Optional[CandidateOptions] = None,
    grammar_name: Optional[str] = None,
) -> List[LabelingHeuristic]:
    """Run Algorithm 2 over ``index`` and return candidate heuristics.

    Args:
        index: The corpus index built from derivation sketches.
        positive_ids: The positives ``P`` discovered so far.
        options: Generation knobs; defaults to :class:`CandidateOptions`.
        grammar_name: Restrict candidates to one grammar (None = all).

    Returns:
        Candidate heuristics with coverage attached, in selection order
        (highest positive-overlap first).
    """
    options = options or CandidateOptions()
    positives_mask = membership_mask(
        positive_ids, max(index.num_sentences, index.store.universe_size)
    )

    # Max-heap entries: (-overlap, -coverage, tie_break, key)
    heap: List[Tuple[int, int, str, SketchKey]] = []
    seen: Set[SketchKey] = {ROOT_KEY}
    selected: List[SketchKey] = []
    selected_coverages: Set[object] = set()

    def push_children(of_key: SketchKey) -> None:
        children = index.children_of(of_key)
        if len(children) > options.max_children_per_expansion:
            children = sorted(
                children, key=lambda k: -index.count(k)
            )[: options.max_children_per_expansion]
        for child in children:
            if child in seen:
                continue
            if grammar_name is not None and child[0] != grammar_name:
                continue
            seen.add(child)
            node = index.node(child)
            if node.count < options.min_coverage:
                continue
            overlap = index.overlap_count(child, positives_mask)
            if overlap < options.min_positive_overlap:
                continue
            heapq.heappush(heap, (-overlap, -node.count, repr(child), child))

    push_children(ROOT_KEY)
    recent: SketchKey = ROOT_KEY

    while heap and len(selected) < options.num_candidates:
        _, _, _, key = heapq.heappop(heap)
        node = index.node(key)
        if options.require_diversity:
            # Interned views are content-unique, so the view object itself is
            # the coverage signature; unsealed indexes fall back to freezing.
            view = node.coverage_view
            signature: object = view if view is not None else frozenset(node.sentence_ids)
            if signature in selected_coverages:
                # Identical coverage to an already-selected rule: still expand
                # its children (they may differ) but do not select it.
                push_children(key)
                continue
            selected_coverages.add(signature)
        selected.append(key)
        recent = key
        push_children(recent)

    return [index.heuristic(key) for key in selected]


def seed_candidates(
    index: CorpusIndex,
    seed_rules: Sequence[LabelingHeuristic],
) -> List[LabelingHeuristic]:
    """Ensure seed rules carry coverage from the index (or a corpus scan).

    Seed rules supplied by the user may not correspond to an index node (for
    example, a long phrase below the sketch depth limit). When they do, the
    index's inverted list is reused; otherwise the caller must have evaluated
    them already.
    """
    prepared: List[LabelingHeuristic] = []
    for rule in seed_rules:
        node = index.lookup(rule.grammar.name, rule.expression)
        if node is not None:
            prepared.append(rule.with_coverage(node.sentence_ids))
        elif rule.coverage_ids is not None:
            prepared.append(rule)
        else:
            raise ValueError(
                f"seed rule {rule.render()!r} is not indexed and has no coverage; "
                "call rule.evaluate(corpus) first"
            )
    return prepared
