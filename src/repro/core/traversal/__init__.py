"""Hierarchy traversal strategies (Sections 3.4-3.6)."""

from .base import TraversalContext, TraversalStrategy, make_traversal
from .local import LocalSearch
from .universal import UniversalSearch
from .hybrid import HybridSearch

__all__ = [
    "TraversalContext",
    "TraversalStrategy",
    "make_traversal",
    "LocalSearch",
    "UniversalSearch",
    "HybridSearch",
]
