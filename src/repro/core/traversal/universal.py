"""UniversalSearch traversal (Algorithm 4).

UniversalSearch evaluates *every* rule in the hierarchy and submits the one
with maximum benefit, skipping rules whose benefit per new instance falls
below the 0.5 cutoff (a majority of their new coverage is expected to be
negative). It ignores the hierarchy's structure entirely — its strength is
finding semantically related rules that are structurally far from the seed,
its weakness is relying on the classifier being decent.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ...index.hierarchy import RuleHierarchy
from ...rules.heuristic import LabelingHeuristic
from .base import TraversalContext, TraversalStrategy


class UniversalSearch(TraversalStrategy):
    """Global benefit-greedy traversal over the whole hierarchy."""

    name = "universal"

    def __init__(self, context: TraversalContext, seed_rules: List[LabelingHeuristic]) -> None:
        super().__init__(context, seed_rules)
        self._candidates: Set[LabelingHeuristic] = set(context.hierarchy.rules())
        self._candidates.update(seed_rules)

    @property
    def candidates(self) -> Set[LabelingHeuristic]:
        """The current universal candidate pool (for inspection/tests)."""
        return set(self._candidates)

    def on_hierarchy_update(self, hierarchy: RuleHierarchy) -> None:
        super().on_hierarchy_update(hierarchy)
        for rule in hierarchy.rules():
            if rule not in self.context.queried:
                self._candidates.add(rule)

    def propose(self) -> Optional[LabelingHeuristic]:
        chosen = self._select_most_beneficial(list(self._candidates), apply_cutoff=True)
        if chosen is None:
            # Nothing clears the average-benefit cutoff (typically because the
            # classifier is still weak). Rather than stalling, query the most
            # precise-looking candidate — UniversalSearch's known weak spot in
            # the low-data regime (Section 3.5).
            chosen = self._select_most_precise(list(self._candidates))
        return chosen

    def feedback(self, rule: LabelingHeuristic, is_useful: bool) -> None:
        # Queried rules leave the pool regardless of the answer; the Darwin
        # loop retrains the classifier on YES, which refreshes all benefits.
        self._candidates.discard(rule)

    # -------------------------------------------------------- state protocol
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["candidates"] = [rule.ref() for rule in self._candidates]
        return state

    def load_state(self, state: dict, resolve) -> None:
        super().load_state(state, resolve)
        self._candidates = {resolve(ref) for ref in state.get("candidates", [])}
