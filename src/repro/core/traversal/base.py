"""Shared infrastructure for hierarchy-traversal strategies.

A traversal strategy decides which candidate heuristic to submit to the oracle
next. All three strategies share the same context object, which bundles the
current hierarchy, the benefit scorer, and a neighbour provider used by
LocalSearch to expand parents/children lazily (its "efficient implementation"
in Section 3.4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from ...errors import TraversalError
from ...index.hierarchy import RuleHierarchy
from ...rules.heuristic import LabelingHeuristic
from ..benefit import BenefitScorer

NeighbourProvider = Callable[[LabelingHeuristic, str], List[LabelingHeuristic]]
"""Callable returning the parents ("parents") or children ("children") of a rule."""


@dataclass
class TraversalContext:
    """Mutable state shared between the Darwin loop and a traversal strategy.

    Attributes:
        hierarchy: The current candidate hierarchy ``H``.
        benefit: Benefit scorer backed by the latest classifier scores.
        neighbours: Provider for on-the-fly parents/children of a rule (used
            when a rule's neighbourhood is not materialized in ``hierarchy``).
        benefit_cutoff: UniversalSearch's average-benefit threshold (0.5).
        queried: Rules already submitted to the oracle (never re-proposed).
    """

    hierarchy: RuleHierarchy
    benefit: BenefitScorer
    neighbours: NeighbourProvider
    benefit_cutoff: float = 0.5
    queried: Set[LabelingHeuristic] = field(default_factory=set)

    def parents_of(self, rule: LabelingHeuristic) -> List[LabelingHeuristic]:
        """Parents from the hierarchy, falling back to the neighbour provider."""
        parents = self.hierarchy.parents(rule) if rule in self.hierarchy else []
        if not parents:
            parents = self.neighbours(rule, "parents")
        return parents

    def children_of(self, rule: LabelingHeuristic) -> List[LabelingHeuristic]:
        """Children from the hierarchy, falling back to the neighbour provider."""
        children = self.hierarchy.children(rule) if rule in self.hierarchy else []
        if not children:
            children = self.neighbours(rule, "children")
        return children


class TraversalStrategy(ABC):
    """Interface implemented by LocalSearch, UniversalSearch and HybridSearch."""

    name: str = "abstract"

    def __init__(self, context: TraversalContext, seed_rules: List[LabelingHeuristic]) -> None:
        if not seed_rules:
            raise TraversalError("traversal requires at least one seed rule")
        self.context = context
        self.seed_rules = list(seed_rules)

    @abstractmethod
    def propose(self) -> Optional[LabelingHeuristic]:
        """The next rule to submit to the oracle (None when exhausted)."""

    @abstractmethod
    def feedback(self, rule: LabelingHeuristic, is_useful: bool) -> None:
        """Incorporate the oracle's answer for ``rule``."""

    def on_hierarchy_update(self, hierarchy: RuleHierarchy) -> None:
        """Called when Darwin regenerates the candidate hierarchy."""
        self.context.hierarchy = hierarchy

    # -------------------------------------------------------- state protocol
    def state_dict(self) -> dict:
        """JSON-able snapshot of the strategy's mutable search state.

        Subclasses extend this with their candidate pools / mode counters;
        the context-level ``queried`` set is serialized by Darwin (it is
        shared with the in-flight bookkeeping, not owned by the strategy).
        """
        return {"seed_rules": [rule.ref() for rule in self.seed_rules]}

    def load_state(self, state: dict, resolve) -> None:
        """Restore :meth:`state_dict` output; ``resolve`` maps rule refs to
        :class:`LabelingHeuristic` instances with coverage attached."""
        self.seed_rules = [resolve(ref) for ref in state.get("seed_rules", [])]

    # Shared helpers ---------------------------------------------------------
    def _unqueried(self, rules: List[LabelingHeuristic]) -> List[LabelingHeuristic]:
        return [rule for rule in rules if rule not in self.context.queried]

    def _select_most_beneficial(
        self,
        rules: List[LabelingHeuristic],
        apply_cutoff: bool = False,
        require_gain: bool = True,
    ) -> Optional[LabelingHeuristic]:
        """Pick the unqueried rule with maximum benefit.

        Args:
            rules: Candidate pool.
            apply_cutoff: Enforce the average-benefit cutoff (UniversalSearch's
                0.5 rule); when no candidate clears it, return None rather than
                falling back — the caller decides how to recover (HybridSearch
                switches strategy, which is the paper's behaviour).
            require_gain: Skip rules whose coverage adds no new sentence
                (mirrors the hierarchy cleanup for lazily-expanded rules).
        """
        candidates = self._unqueried(rules)
        if require_gain:
            # One batched kernel over the whole pool; new_count() below is
            # then a cache read per rule.
            self.context.benefit.prime_new_counts(candidates)
            candidates = [
                rule for rule in candidates if self.context.benefit.new_count(rule)
            ]
        if not candidates:
            return None
        if apply_cutoff:
            return self.context.benefit.most_beneficial(
                candidates, min_average=self.context.benefit_cutoff
            )
        return self.context.benefit.most_beneficial(candidates)

    def _select_most_precise(
        self, rules: List[LabelingHeuristic]
    ) -> Optional[LabelingHeuristic]:
        """Pick the unqueried rule with the highest *average* benefit.

        Used as a conservative fallback when nothing clears the cutoff: the
        most-precise-looking candidate is a better query than the biggest one.
        The average is bucketed (0.1 granularity) so that among similarly
        precise-looking rules the one with the larger total benefit wins —
        this keeps the fallback from collapsing into HighP's tiny-rule bias.
        """
        unqueried = self._unqueried(rules)
        self.context.benefit.prime_new_counts(unqueried)
        candidates = [
            rule for rule in unqueried if self.context.benefit.new_count(rule)
        ]
        if not candidates:
            return None
        benefit = self.context.benefit
        best = None
        best_key = None
        best_render = None
        for rule in candidates:
            key = (round(benefit.average_benefit(rule), 1), benefit.benefit(rule))
            if best is None or key > best_key:
                best, best_key, best_render = rule, key, None
            elif key == best_key:
                # Exact tie: rendered-string tie-break, computed lazily so the
                # common no-tie case never renders every candidate.
                if best_render is None:
                    best_render = best.render()
                render = rule.render()
                if render > best_render:
                    best, best_render = rule, render
        return best


def make_traversal(
    kind: str,
    context: TraversalContext,
    seed_rules: List[LabelingHeuristic],
    tau: int = 5,
) -> TraversalStrategy:
    """Factory for traversal strategies by name ("local"/"universal"/"hybrid").

    Resolution goes through :data:`repro.engine.registry.TRAVERSALS`, so
    strategies registered with ``@register_traversal("name")`` plug into
    Darwin (and config dicts) without touching this module.
    """
    from ...engine.registry import TRAVERSALS

    if kind not in TRAVERSALS:
        raise TraversalError(f"unknown traversal strategy {kind!r}")
    return TRAVERSALS.create(kind, context, seed_rules, tau=tau)
