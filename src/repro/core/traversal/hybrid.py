"""HybridSearch traversal (Algorithm 5).

HybridSearch runs UniversalSearch and LocalSearch side by side: it starts in
universal mode and switches strategy after ``tau`` consecutive unsuccessful
attempts (rejected rules or rounds where no candidate clears the benefit
cutoff), then switches back under the same condition. Oracle feedback updates
*both* candidate pools so no information is lost across switches.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ...errors import TraversalError
from ...index.hierarchy import RuleHierarchy
from ...rules.heuristic import LabelingHeuristic
from .base import TraversalContext, TraversalStrategy


class HybridSearch(TraversalStrategy):
    """Alternating universal/local traversal with a switching threshold ``tau``."""

    name = "hybrid"

    def __init__(
        self,
        context: TraversalContext,
        seed_rules: List[LabelingHeuristic],
        tau: int = 5,
    ) -> None:
        super().__init__(context, seed_rules)
        if tau <= 0:
            raise TraversalError("tau must be positive")
        self.tau = tau
        self.universal_mode = True
        self._attempts = 0
        self._local_candidates: Set[LabelingHeuristic] = set(seed_rules)
        for seed in seed_rules:
            self._local_candidates.update(context.parents_of(seed))
            self._local_candidates.update(context.children_of(seed))
        self._universal_candidates: Set[LabelingHeuristic] = set(context.hierarchy.rules())
        self._universal_candidates.update(seed_rules)

    # ------------------------------------------------------------- inspection
    @property
    def mode(self) -> str:
        """The currently active strategy ("universal" or "local")."""
        return "universal" if self.universal_mode else "local"

    @property
    def local_candidates(self) -> Set[LabelingHeuristic]:
        """Current local candidate pool."""
        return set(self._local_candidates)

    @property
    def universal_candidates(self) -> Set[LabelingHeuristic]:
        """Current universal candidate pool."""
        return set(self._universal_candidates)

    # -------------------------------------------------------------- lifecycle
    def on_hierarchy_update(self, hierarchy: RuleHierarchy) -> None:
        super().on_hierarchy_update(hierarchy)
        for rule in hierarchy.rules():
            if rule not in self.context.queried:
                self._universal_candidates.add(rule)

    def _maybe_switch(self) -> None:
        if self._attempts >= self.tau:
            self.universal_mode = not self.universal_mode
            self._attempts = 0

    def propose(self) -> Optional[LabelingHeuristic]:
        self._maybe_switch()
        self._attempts += 1
        chosen = self._propose_from_mode(self.universal_mode)
        if chosen is None:
            # The active strategy has nothing worth querying (for universal:
            # nothing clears the benefit cutoff; for local: the neighbourhood
            # is exhausted). That counts as the unsuccessful streak ending —
            # toggle immediately instead of burning oracle budget.
            self.universal_mode = not self.universal_mode
            self._attempts = 0
            chosen = self._propose_from_mode(self.universal_mode)
        if chosen is None:
            # Both pools exhausted under their own criteria: query the most
            # precise-looking candidate anywhere so the budget is still usable.
            chosen = self._select_most_precise(
                list(self._universal_candidates | self._local_candidates)
            )
        if chosen is None:
            chosen = self._select_most_precise(self.context.hierarchy.rules())
        return chosen

    def _propose_from_mode(self, universal: bool) -> Optional[LabelingHeuristic]:
        pool = list(self._universal_candidates if universal else self._local_candidates)
        return self._select_most_beneficial(pool, apply_cutoff=True)

    def feedback(self, rule: LabelingHeuristic, is_useful: bool) -> None:
        self._universal_candidates.discard(rule)
        self._local_candidates.discard(rule)
        if is_useful:
            self._attempts = 0
            self._local_candidates.update(
                r for r in self.context.parents_of(rule) if r not in self.context.queried
            )
        else:
            self._local_candidates.update(
                r for r in self.context.children_of(rule) if r not in self.context.queried
            )

    # -------------------------------------------------------- state protocol
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["universal_mode"] = self.universal_mode
        state["attempts"] = self._attempts
        state["local_candidates"] = [rule.ref() for rule in self._local_candidates]
        state["universal_candidates"] = [
            rule.ref() for rule in self._universal_candidates
        ]
        return state

    def load_state(self, state: dict, resolve) -> None:
        super().load_state(state, resolve)
        self.universal_mode = bool(state["universal_mode"])
        self._attempts = int(state["attempts"])
        self._local_candidates = {
            resolve(ref) for ref in state.get("local_candidates", [])
        }
        self._universal_candidates = {
            resolve(ref) for ref in state.get("universal_candidates", [])
        }
