"""LocalSearch traversal (Algorithm 3).

LocalSearch explores the immediate neighbourhood of rules the oracle has
already judged: a confirmed rule's *parents* (generalizations) join the
candidate pool, a rejected rule's *children* (specializations) do. Because it
only ever looks one hop away, it does not need the full hierarchy up front —
the neighbour provider expands parents/children on the fly.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ...rules.heuristic import LabelingHeuristic
from .base import TraversalContext, TraversalStrategy


class LocalSearch(TraversalStrategy):
    """Neighbourhood-based traversal seeded with the initial rule(s)."""

    name = "local"

    def __init__(self, context: TraversalContext, seed_rules: List[LabelingHeuristic]) -> None:
        super().__init__(context, seed_rules)
        self._candidates: Set[LabelingHeuristic] = set(seed_rules)
        # The seeds themselves have effectively been confirmed, so their
        # generalizations are immediately interesting.
        for seed in seed_rules:
            self._candidates.update(context.parents_of(seed))
            self._candidates.update(context.children_of(seed))

    @property
    def candidates(self) -> Set[LabelingHeuristic]:
        """The current local candidate pool (for inspection/tests)."""
        return set(self._candidates)

    def propose(self) -> Optional[LabelingHeuristic]:
        # Prefer locally-reachable rules whose new coverage looks mostly
        # positive; fall back to the most precise-looking neighbour, and only
        # then widen to the hierarchy at large.
        pool = list(self._candidates)
        chosen = self._select_most_beneficial(pool, apply_cutoff=True)
        if chosen is None:
            chosen = self._select_most_precise(pool)
        if chosen is None:
            chosen = self._select_most_precise(self.context.hierarchy.rules())
        return chosen

    def feedback(self, rule: LabelingHeuristic, is_useful: bool) -> None:
        self._candidates.discard(rule)
        if is_useful:
            self._candidates.update(
                r for r in self.context.parents_of(rule) if r not in self.context.queried
            )
        else:
            self._candidates.update(
                r for r in self.context.children_of(rule) if r not in self.context.queried
            )

    # -------------------------------------------------------- state protocol
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["candidates"] = [rule.ref() for rule in self._candidates]
        return state

    def load_state(self, state: dict, resolve) -> None:
        super().load_state(state, resolve)
        self._candidates = {resolve(ref) for ref in state.get("candidates", [])}
