"""Score update component (Section 3.7).

After each oracle answer Darwin must (1) retrain the classifier when new
positives were discovered, (2) refresh the benefit estimates of every
candidate heuristic, and (3) signal the hierarchy generator that new
candidates should be considered. :class:`ScoreUpdater` encapsulates that
bookkeeping so the main loop and the interactive session share it.

The crowd coordinator batches step (1) and (3): accepted answers are applied
to the covered set immediately (so benefit gains stay correct for subsequent
proposals) while the retrain and the hierarchy-refresh signal are deferred
until :meth:`ScoreUpdater.flush` — with a batch of one, the deferred path is
step-for-step equivalent to the serial one.
"""

from __future__ import annotations

import time
from typing import Optional, Set

from ..classifier.trainer import ClassifierTrainer
from ..obs import get_registry, trace as obs_trace
from .benefit import BenefitScorer


class ScoreUpdater:
    """Couples the classifier trainer with the benefit scorer."""

    def __init__(
        self,
        trainer: ClassifierTrainer,
        benefit: BenefitScorer,
        retrain_every: int = 1,
    ) -> None:
        if retrain_every <= 0:
            raise ValueError("retrain_every must be positive")
        self.trainer = trainer
        self.benefit = benefit
        self.retrain_every = retrain_every
        registry = get_registry()
        self._obs_retrain_seconds = registry.histogram(
            "darwin_phase_seconds",
            "Wall-clock seconds per Darwin loop phase",
            labels=("phase",),
        ).labels(phase="retrain")
        self._obs_retrains = registry.counter(
            "darwin_retrains_total", "Classifier retrains (initial fit included)"
        )
        self._accepted_since_retrain = 0
        self._needs_hierarchy_refresh = False
        self._pending_new_positive_ids: Set[int] = set()
        self._deferred_accepts = 0
        self._deferred_new_positive_ids: Set[int] = set()

    @property
    def needs_hierarchy_refresh(self) -> bool:
        """True when new positives arrived since the last hierarchy build."""
        return self._needs_hierarchy_refresh

    @property
    def pending_new_positive_ids(self) -> Set[int]:
        """Positives discovered since the last hierarchy refresh.

        Darwin's incremental refresh path uses these to re-expand only the
        index nodes whose overlap with ``P`` actually changed.
        """
        return set(self._pending_new_positive_ids)

    @property
    def pending_update_count(self) -> int:
        """Accepted answers applied with ``defer=True`` and not yet flushed."""
        return self._deferred_accepts

    def acknowledge_hierarchy_refresh(self) -> None:
        """Reset the refresh flag after the hierarchy has been regenerated."""
        self._needs_hierarchy_refresh = False
        self._pending_new_positive_ids.clear()

    def initialize(self, positive_ids: Set[int]) -> None:
        """Initial classifier training on the seed positives."""
        self._retrain(positive_ids)
        self.benefit.update(
            scores=self.trainer.score_corpus(), covered_ids=positive_ids
        )

    def _retrain(self, positive_ids: Set[int]) -> None:
        """Retrain wrapped in the retrain span/histogram/counter."""
        with obs_trace("darwin.retrain", positives=len(positive_ids)):
            start = time.perf_counter()
            try:
                self.trainer.retrain(positive_ids)
            finally:
                self._obs_retrain_seconds.observe(time.perf_counter() - start)
                self._obs_retrains.inc()

    def on_accept(
        self,
        positive_ids: Set[int],
        new_positive_ids: Set[int],
        defer: bool = False,
    ) -> None:
        """Handle a YES answer: retrain (per policy) and refresh benefits.

        With ``defer=True`` the covered set still grows immediately — benefit
        gains for subsequent proposals must see the newly covered sentences —
        but the retrain and the hierarchy-refresh signal are buffered until
        :meth:`flush` (the crowd coordinator's batched-apply path).
        """
        self._accepted_since_retrain += 1
        if defer:
            self._deferred_accepts += 1
            self._deferred_new_positive_ids.update(new_positive_ids)
            self.benefit.update(covered_ids=positive_ids)
            return
        self._apply_accepts(positive_ids, new_positive_ids)

    def _apply_accepts(self, positive_ids: Set[int], new_positive_ids: Set[int]) -> None:
        """Retrain (per the retrain-every policy), refresh benefits, and flag
        the hierarchy refresh — the shared tail of the serial and batched
        paths, kept in one place so they cannot drift."""
        retrained = False
        if new_positive_ids and self._accepted_since_retrain >= self.retrain_every:
            self._retrain(positive_ids)
            self._accepted_since_retrain = 0
            retrained = True
        scores = self.trainer.score_corpus() if retrained else None
        self.benefit.update(scores=scores, covered_ids=positive_ids)
        if new_positive_ids:
            self._needs_hierarchy_refresh = True
            self._pending_new_positive_ids.update(new_positive_ids)

    def on_reject(self) -> None:
        """Handle a NO answer (no retraining; benefits stay valid)."""
        # Rejected rules only shrink the candidate pools; nothing to update.
        return None

    def flush(self, positive_ids: Set[int]) -> int:
        """Apply deferred accepts: retrain once and refresh benefits.

        Returns the number of deferred accepts flushed (0 when nothing was
        pending, in which case no work is done). The retrain-every policy is
        honoured across the batch exactly as the serial loop honours it per
        answer, so ``batch_size=1`` reproduces serial behaviour for any
        ``retrain_every``.
        """
        flushed = self._deferred_accepts
        if not flushed:
            return 0
        self._deferred_accepts = 0
        new_positive_ids = self._deferred_new_positive_ids
        self._deferred_new_positive_ids = set()
        self._apply_accepts(positive_ids, new_positive_ids)
        return flushed

    # ---------------------------------------------------------- state protocol
    def state_dict(self) -> dict:
        """JSON-able snapshot of the updater's counters and pending id sets."""
        return {
            "accepted_since_retrain": self._accepted_since_retrain,
            "needs_hierarchy_refresh": self._needs_hierarchy_refresh,
            "pending_new_positive_ids": sorted(self._pending_new_positive_ids),
            "deferred_accepts": self._deferred_accepts,
            "deferred_new_positive_ids": sorted(self._deferred_new_positive_ids),
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this updater."""
        self._accepted_since_retrain = int(state["accepted_since_retrain"])
        self._needs_hierarchy_refresh = bool(state["needs_hierarchy_refresh"])
        self._pending_new_positive_ids = {
            int(i) for i in state["pending_new_positive_ids"]
        }
        self._deferred_accepts = int(state["deferred_accepts"])
        self._deferred_new_positive_ids = {
            int(i) for i in state["deferred_new_positive_ids"]
        }

    def current_scores(self):
        """The trainer's latest per-sentence probability estimates."""
        return self.trainer.score_corpus()

    def classifier_f1(self, positive_ids: Optional[Set[int]]) -> float:
        """F1 of the current classifier against ground truth (0.0 if unknown)."""
        if not positive_ids:
            return 0.0
        return self.trainer.f1_against(positive_ids)
