"""Command-line interface for the Darwin reproduction.

Provides a small set of subcommands so the system can be exercised without
writing Python:

* ``python -m repro datasets`` — list the available corpora (Table 1 view),
* ``python -m repro run`` — run Darwin on one dataset with a simulated oracle
  and print the discovered rules plus the coverage curve,
* ``python -m repro compare`` — run Darwin against the Snuba baseline with the
  same labeled seed subset (the Figure 7 comparison at one seed size),
* ``python -m repro crowd`` — drive K concurrent simulated annotators with
  redundant dispatch, majority voting and batched retrains (Section 4.3),
* ``python -m repro serve`` — multi-tenant serving: N independent tenant
  engines over one shared read-only coverage arena + corpus index, each with
  its own crowd of annotators, multiplexed on one asyncio loop,
* ``python -m repro serve-http`` — the HTTP/JSON gateway over the same
  tenant pool: per-tenant propose/answer/checkpoint endpoints with bounded
  admission queues (429 backpressure), bearer-token auth, ``/metrics``
  Prometheus exposition, and graceful SIGTERM drain,
* ``python -m repro resume`` — continue a checkpointed run
  (``run --checkpoint ... --checkpoint-every N`` writes the checkpoints),
* ``python -m repro export-state`` — inspect a checkpoint's manifest,
* ``python -m repro stats`` — inspect the telemetry of a ``--metrics-out``
  snapshot or a checkpoint (summary, raw JSON, or Prometheus exposition),
* ``python -m repro lint`` — run the :mod:`repro.analysis` invariant
  checkers (RPR001–RPR005) over the source tree; exits 1 on findings.

``run``, ``resume`` and ``serve`` accept ``--metrics-out PATH``: this enables
the :mod:`repro.obs` telemetry layer for the process (metrics stay off
otherwise — the default registry is a no-op) and writes a metrics+spans
snapshot to ``PATH`` at exit and on every checkpoint save.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import __version__, obs
from .analysis.baseline import DEFAULT_BASELINE_PATH as LINT_BASELINE_PATH
from .baselines.snuba import SnubaBaseline
from .config import ClassifierConfig, CrowdConfig, DarwinConfig, IndexConfig
from .core.darwin import Darwin, DarwinResult
from .crowd import run_crowd
from .datasets.registry import DATASET_NAMES, load_bank, load_dataset, table1_rows
from .engine.engine import DarwinEngine, export_state_json
from .evaluation.reporting import format_curve_table, format_table
from .experiments.common import prepare_dataset
from .experiments.seed_size import sample_labeled_subset


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Darwin: adaptive rule discovery for labeling text data",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser(
        "datasets", help="list the synthetic corpora and their statistics"
    )
    datasets_parser.add_argument("--scale", type=float, default=0.05,
                                 help="fraction of paper-scale size to generate")
    datasets_parser.add_argument("--seed", type=int, default=0)

    run_parser = subparsers.add_parser(
        "run", help="run Darwin on one dataset with a simulated oracle"
    )
    run_parser.add_argument("--dataset", choices=sorted(DATASET_NAMES),
                            default="directions")
    run_parser.add_argument("--budget", type=int, default=60,
                            help="oracle-question budget")
    run_parser.add_argument("--traversal", choices=("hybrid", "universal", "local"),
                            default="hybrid")
    run_parser.add_argument("--num-sentences", type=int, default=2000)
    run_parser.add_argument("--seed-rule", default=None,
                            help="seed rule text (dataset default when omitted)")
    run_parser.add_argument("--seed", type=int, default=7)
    run_parser.add_argument("--epochs", type=int, default=40,
                            help="benefit-classifier training epochs")
    run_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="write session checkpoints to this file")
    run_parser.add_argument("--checkpoint-every", type=int, default=None,
                            metavar="N",
                            help="checkpoint after every N answered questions "
                                 "(requires --checkpoint)")
    run_parser.add_argument("--coverage-backend", choices=("memory", "arena"),
                            default="memory",
                            help="where interned coverage columns live: the "
                                 "heap, or a memory-mapped arena file for "
                                 "larger-than-memory corpora")
    run_parser.add_argument("--arena-path", default=None, metavar="PATH",
                            help="arena file for --coverage-backend arena "
                                 "(default: a temporary file; pass a real "
                                 "path to make checkpoints resumable)")
    run_parser.add_argument("--bitset-cache-bytes", type=int,
                            default=8 << 20, metavar="BYTES",
                            help="LRU byte budget for the arena backend's "
                                 "packed-bitset fast path")
    run_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                            help="enable repro.obs telemetry and write a "
                                 "metrics+spans snapshot JSON here at exit "
                                 "and on every checkpoint")

    resume_parser = subparsers.add_parser(
        "resume", help="continue a checkpointed run question-for-question"
    )
    resume_parser.add_argument("--checkpoint", required=True, metavar="PATH",
                               help="checkpoint written by 'run --checkpoint'")
    resume_parser.add_argument("--budget", type=int, default=None,
                               help="total question budget including already-"
                                    "answered ones (default: config budget)")
    resume_parser.add_argument("--checkpoint-every", type=int, default=None,
                               metavar="N",
                               help="keep checkpointing every N answers")
    resume_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                               help="enable repro.obs telemetry and write a "
                                    "metrics+spans snapshot JSON here at exit "
                                    "and on every checkpoint")

    export_parser = subparsers.add_parser(
        "export-state", help="print a checkpoint's manifest summary as JSON"
    )
    export_parser.add_argument("--checkpoint", required=True, metavar="PATH")
    export_parser.add_argument("--output", default=None, metavar="FILE",
                               help="write the JSON here instead of stdout")

    compare_parser = subparsers.add_parser(
        "compare", help="compare Darwin against Snuba for one seed-set size"
    )
    compare_parser.add_argument("--dataset", choices=sorted(DATASET_NAMES),
                                default="musicians")
    compare_parser.add_argument("--seed-size", type=int, default=25,
                                help="number of labeled seed sentences")
    compare_parser.add_argument("--budget", type=int, default=60)
    compare_parser.add_argument("--scale", type=float, default=0.08)
    compare_parser.add_argument("--biased", action="store_true",
                                help="exclude the dataset's characteristic token "
                                     "from the seed pool (Figure 8)")
    compare_parser.add_argument("--seed", type=int, default=7)

    crowd_parser = subparsers.add_parser(
        "crowd", help="run Darwin with K concurrent simulated annotators"
    )
    crowd_parser.add_argument("--dataset", choices=sorted(DATASET_NAMES),
                              default="professions")
    crowd_parser.add_argument("--num-sentences", type=int, default=2000)
    crowd_parser.add_argument("--budget", type=int, default=60,
                              help="committed-question budget")
    crowd_parser.add_argument("--annotators", type=int, default=4,
                              help="concurrent annotator sessions K")
    crowd_parser.add_argument("--redundancy", type=int, default=3,
                              help="votes per question (majority commit)")
    crowd_parser.add_argument("--batch-size", type=int, default=8,
                              help="answers applied per retrain/refresh batch")
    crowd_parser.add_argument("--latency", type=float, default=0.02,
                              help="mean simulated think time per answer (s)")
    crowd_parser.add_argument("--noise", type=float, default=0.1,
                              help="per-annotator answer-flip probability")
    crowd_parser.add_argument("--seed-rule", default=None,
                              help="seed rule text (dataset default when omitted)")
    crowd_parser.add_argument("--seed", type=int, default=7)
    crowd_parser.add_argument("--epochs", type=int, default=40,
                              help="benefit-classifier training epochs")

    serve_parser = subparsers.add_parser(
        "serve", help="serve N tenant engines over one shared read-only arena"
    )
    serve_parser.add_argument("--dataset", choices=sorted(DATASET_NAMES),
                              default="directions")
    serve_parser.add_argument("--num-sentences", type=int, default=2000)
    serve_parser.add_argument("--tenants", type=int, default=4,
                              help="independent tenant engines to serve")
    serve_parser.add_argument("--budget", type=int, default=30,
                              help="per-tenant committed-question budget")
    serve_parser.add_argument("--annotators", type=int, default=2,
                              help="concurrent annotators per tenant")
    serve_parser.add_argument("--redundancy", type=int, default=1,
                              help="votes per question (majority commit)")
    serve_parser.add_argument("--batch-size", type=int, default=4,
                              help="answers applied per retrain/refresh batch")
    serve_parser.add_argument("--latency", type=float, default=0.0,
                              help="mean simulated think time per answer (s)")
    serve_parser.add_argument("--noise", type=float, default=0.0,
                              help="per-annotator answer-flip probability")
    serve_parser.add_argument("--seed-rule", default=None,
                              help="seed rule text (dataset default when omitted)")
    serve_parser.add_argument("--seed", type=int, default=7)
    serve_parser.add_argument("--epochs", type=int, default=40,
                              help="benefit-classifier training epochs")
    serve_parser.add_argument("--coverage-backend", choices=("memory", "arena"),
                              default="arena",
                              help="shared coverage backend (arena maps one "
                                   "read-only file across every tenant)")
    serve_parser.add_argument("--arena-path", default=None, metavar="PATH",
                              help="shared arena file (default: a temporary "
                                   "file for this serve run)")
    serve_parser.add_argument("--bitset-cache-bytes", type=int,
                              default=8 << 20, metavar="BYTES",
                              help="LRU byte budget for the shared arena's "
                                   "packed-bitset fast path (bounds the "
                                   "pool's shared resident memory)")
    serve_parser.add_argument("--expected-digest", default=None, metavar="HEX",
                              help="refuse to serve unless the shared arena "
                                   "matches this content digest")
    serve_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                              help="enable repro.obs telemetry and write a "
                                   "metrics+spans snapshot JSON here when "
                                   "the serve run finishes")

    http_parser = subparsers.add_parser(
        "serve-http",
        help="HTTP/JSON gateway over a tenant pool (propose/answer/"
             "checkpoint per tenant, /healthz, /metrics, SIGTERM drain)",
    )
    http_parser.add_argument("--dataset", choices=sorted(DATASET_NAMES),
                             default="directions")
    http_parser.add_argument("--num-sentences", type=int, default=600)
    http_parser.add_argument("--tenants", type=int, default=2,
                             help="tenant engines to spawn and expose")
    http_parser.add_argument("--workers", type=int, default=1,
                             help="serving processes; 1 hosts every tenant "
                                  "in this process, N>1 runs a repro.fleet "
                                  "of N workers sharing one read-only arena "
                                  "and partitioning the tenants")
    http_parser.add_argument("--fleet-workdir", default=None, metavar="DIR",
                             help="fleet scratch directory (arena file, "
                                  "autosaves, migration checkpoints); "
                                  "default: a temporary directory owned by "
                                  "this run")
    http_parser.add_argument("--start-method", default="fork",
                             choices=("fork", "spawn", "forkserver"),
                             help="multiprocessing start method for fleet "
                                  "workers (fork shares the substrate "
                                  "copy-on-write; spawn rebuilds it from a "
                                  "substrate checkpoint)")
    http_parser.add_argument("--budget", type=int, default=30,
                             help="per-tenant committed-question budget")
    http_parser.add_argument("--annotators", type=int, default=4,
                             help="annotator slots per tenant (annotator_id "
                                  "range accepted by propose/answer)")
    http_parser.add_argument("--redundancy", type=int, default=1,
                             help="votes per question (majority commit)")
    http_parser.add_argument("--batch-size", type=int, default=4,
                             help="answers applied per retrain/refresh batch")
    http_parser.add_argument("--seed-rule", default=None,
                             help="seed rule text (dataset default when omitted)")
    http_parser.add_argument("--seed", type=int, default=7)
    http_parser.add_argument("--epochs", type=int, default=40,
                             help="benefit-classifier training epochs")
    http_parser.add_argument("--coverage-backend", choices=("memory", "arena"),
                             default="memory",
                             help="shared coverage backend; checkpoints over "
                                  "the memory backend are self-contained, "
                                  "arena needs a durable --arena-path to "
                                  "leave resumable drain checkpoints")
    http_parser.add_argument("--arena-path", default=None, metavar="PATH",
                             help="shared arena file for the arena backend")
    http_parser.add_argument("--host", default="127.0.0.1",
                             help="interface to bind (default: loopback only)")
    http_parser.add_argument("--port", type=int, default=8080,
                             help="TCP port; 0 binds an ephemeral port and "
                                  "reports it (stdout + --ready-file)")
    http_parser.add_argument("--queue-depth", type=int, default=32,
                             help="per-tenant admission queue bound; a full "
                                  "queue answers 429 + Retry-After")
    http_parser.add_argument("--deadline-ms", type=float, default=10_000.0,
                             help="default per-request deadline; queued work "
                                  "past it is cancelled with a 504")
    http_parser.add_argument("--retry-after", type=int, default=1,
                             metavar="SECONDS",
                             help="Retry-After value sent with 429/503")
    http_parser.add_argument("--auth-tokens", default=None, metavar="FILE",
                             help="JSON file mapping bearer tokens to tenant "
                                  "entitlements ('*', an id, or a list); "
                                  "omitted = authentication disabled")
    http_parser.add_argument("--checkpoint-dir", default="gateway-checkpoints",
                             metavar="DIR",
                             help="where client-requested and final drain "
                                  "checkpoints are written")
    http_parser.add_argument("--allow-debug-ops", action="store_true",
                             help="expose POST /tenants/{id}/debug/sleep "
                                  "(tests and load harnesses only)")
    http_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                             help="write a final metrics+spans snapshot here "
                                  "when the drain completes")
    http_parser.add_argument("--ready-file", default=None, metavar="PATH",
                             help="write {url, port, pid} JSON here once the "
                                  "listener is bound (for smoke harnesses)")

    stats_parser = subparsers.add_parser(
        "stats", help="inspect telemetry from a snapshot file or checkpoint"
    )
    stats_parser.add_argument("--metrics", default=None, metavar="PATH",
                              help="snapshot written by --metrics-out")
    stats_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                              help="checkpoint whose embedded metrics block "
                                   "to inspect (saved with --metrics-out on)")
    stats_parser.add_argument("--format",
                              choices=("summary", "json", "prometheus"),
                              default="summary",
                              help="summary digest, the raw snapshot JSON, or "
                                   "Prometheus text exposition")

    lint_parser = subparsers.add_parser(
        "lint", help="check codebase invariants (determinism, state "
                     "protocol, sealed arrays, lock discipline, obs cost)"
    )
    lint_parser.add_argument("paths", nargs="*", default=["src"],
                             metavar="PATH",
                             help="files or directories to lint "
                                  "(default: src)")
    lint_parser.add_argument("--format", choices=("text", "json"),
                             default="text",
                             help="report format (json includes a summary "
                                  "block with per-code counts)")
    lint_parser.add_argument("--baseline", nargs="?", default=None,
                             const=LINT_BASELINE_PATH, metavar="FILE",
                             help="subtract grandfathered findings from this "
                                  "baseline file (FILE omitted: the default "
                                  "committed baseline)")
    lint_parser.add_argument("--update-baseline", action="store_true",
                             help="rewrite the baseline so every current "
                                  "finding is grandfathered, then exit 0")
    lint_parser.add_argument("--select", action="append", default=None,
                             metavar="CODES",
                             help="comma-separated checker codes to run "
                                  "(default: all registered)")
    return parser


def _command_datasets(args: argparse.Namespace) -> int:
    rows = table1_rows(scale=args.scale, seed=args.seed)
    print(format_table(
        ["dataset", "task", "#sentences", "%positives", "paper #sentences",
         "paper %positives"],
        [
            [row["dataset"], row["task"], row["num_sentences"],
             100.0 * float(row["positive_fraction"]),
             row["paper_num_sentences"],
             100.0 * float(row["paper_positive_fraction"])]
            for row in rows
        ],
        title="Available datasets (generated at --scale vs. paper Table 1)",
    ))
    return 0


def _print_run_summary(result: DarwinResult) -> None:
    print(f"\nasked {result.queries_used} questions, accepted "
          f"{len(result.rule_set)} rules")
    print(f"coverage (recall over positives): {result.final_recall:.3f}")
    print(f"benefit-classifier F1:            {result.final_f1:.3f}")
    print("\naccepted rules:")
    for rule in result.rule_set.rules:
        print(f"  - {rule.render()!r:40s} |C_r| = {rule.coverage_size}")
    print()
    print(format_curve_table(
        {"coverage": result.recall_curve(), "F1": result.f1_curve()},
        step=10, title="progress by #questions",
    ))


def _command_run(args: argparse.Namespace) -> int:
    if args.metrics_out:
        # Enable before the engine exists: metric sites resolve their
        # instruments at component construction time.
        obs.enable()
    bank = load_bank(args.dataset)
    seed_rule = args.seed_rule or bank.default_seed_rules[0]
    # Declarative construction: the whole engine comes from one config dict
    # (the same shape DarwinEngine.from_config accepts from a JSON file).
    engine = DarwinEngine.from_config({
        "dataset": {"name": args.dataset, "num_sentences": args.num_sentences,
                    "seed": args.seed, "parse_trees": False},
        "config": {"budget": args.budget, "traversal": args.traversal,
                   "num_candidates": 1000, "oracle": "ground_truth",
                   "classifier": {"model": "logistic", "epochs": args.epochs},
                   "index": {"coverage_backend": args.coverage_backend,
                             "arena_path": args.arena_path,
                             "bitset_cache_bytes": args.bitset_cache_bytes}},
        "seeds": {"rule_texts": [seed_rule]},
    })
    corpus = engine.corpus
    print(f"dataset={args.dataset} sentences={len(corpus)} "
          f"positives={len(corpus.positive_ids())} seed rule={seed_rule!r}")
    if args.coverage_backend == "arena":
        arena = engine.darwin.index.store.arena
        print(f"coverage backend: arena at {arena.path} "
              f"({arena.values_bytes} column bytes on disk)")
    result = engine.run(
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        metrics_out=args.metrics_out,
    )
    if args.checkpoint:
        # engine.run always leaves the file holding the end-of-run state.
        print(f"checkpoint written to {args.checkpoint}")
    if args.metrics_out:
        print(f"metrics snapshot written to {args.metrics_out}")
    _print_run_summary(result)
    return 0


def _command_resume(args: argparse.Namespace) -> int:
    if args.metrics_out:
        obs.enable()
    engine = DarwinEngine.load(args.checkpoint)
    print(f"resuming {args.checkpoint}: {engine.questions_asked} questions "
          f"already answered, budget "
          f"{args.budget or engine.config.budget}")
    result = engine.run(
        budget=args.budget,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        metrics_out=args.metrics_out,
    )
    print(f"checkpoint updated: {args.checkpoint}")
    if args.metrics_out:
        print(f"metrics snapshot written to {args.metrics_out}")
    _print_run_summary(result)
    return 0


def _command_export_state(args: argparse.Namespace) -> int:
    rendered = export_state_json(args.checkpoint)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"manifest summary written to {args.output}")
    else:
        print(rendered)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    config = DarwinConfig(
        budget=args.budget, num_candidates=1000,
        classifier=ClassifierConfig(epochs=40),
    )
    setting = prepare_dataset(args.dataset, scale=args.scale, seed=args.seed,
                              config=config)
    subset = sample_labeled_subset(setting, size=args.seed_size, seed=args.seed,
                                   biased=args.biased)
    labels = {i: bool(setting.corpus[i].label) for i in subset}

    snuba = SnubaBaseline(setting.corpus).run(subset, labels=labels)
    darwin = setting.run_darwin(
        traversal="hybrid", budget=args.budget,
        seed_positive_ids=[i for i in subset if labels[i]],
    )
    print(format_table(
        ["system", "supervision", "coverage of positives", "#rules"],
        [
            ["Snuba", f"{len(subset)} labeled sentences", snuba.coverage,
             len(snuba.rule_set)],
            ["Darwin(HS)", f"{sum(labels.values())} seed positives + "
                           f"{darwin.queries_used} YES/NO questions",
             darwin.final_recall, len(darwin.rule_set)],
        ],
        title=f"Darwin vs Snuba on {args.dataset} "
              f"({'biased ' if args.biased else ''}seed size {args.seed_size})",
    ))
    return 0


def _command_crowd(args: argparse.Namespace) -> int:
    corpus = load_dataset(args.dataset, num_sentences=args.num_sentences,
                          seed=args.seed, parse_trees=False)
    bank = load_bank(args.dataset)
    seed_rule = args.seed_rule or bank.default_seed_rules[0]
    config = DarwinConfig(
        budget=args.budget,
        num_candidates=1000,
        classifier=ClassifierConfig(epochs=args.epochs),
    )
    crowd_config = CrowdConfig(
        num_annotators=args.annotators,
        redundancy=args.redundancy,
        batch_size=args.batch_size,
        budget=args.budget,
        annotator_latency=args.latency,
        label_noise=args.noise,
        seed=args.seed,
    )
    print(f"dataset={args.dataset} sentences={len(corpus)} "
          f"positives={len(corpus.positive_ids())} seed rule={seed_rule!r}")
    print(f"crowd: K={args.annotators} annotators, redundancy={args.redundancy}, "
          f"batch_size={args.batch_size}, latency={args.latency * 1000:.0f}ms, "
          f"noise={args.noise}")
    darwin = Darwin(corpus, config=config)
    outcome = run_crowd(darwin, config=crowd_config, seed_rule_texts=[seed_rule])

    crowd = outcome.crowd
    result = outcome.darwin_result
    print(f"\ncommitted {crowd.questions_committed} questions from "
          f"{crowd.votes_collected} votes in {outcome.wall_seconds:.2f}s "
          f"({outcome.answers_per_sec:.1f} answers/s, "
          f"{outcome.votes_per_sec:.1f} votes/s)")
    print(f"accepted {len(result.rule_set)} rules; classifier retrains: "
          f"{darwin.trainer.retrain_count}")
    print(f"coverage (recall over positives): {result.final_recall:.3f}")
    print("\nvotes per annotator:")
    for annotator_id, votes in sorted(crowd.votes_per_annotator.items()):
        print(f"  annotator {annotator_id}: {votes}")
    print("\naccepted rules:")
    for rule in result.rule_set.rules:
        print(f"  - {rule.render()!r:40s} |C_r| = {rule.coverage_size}")
    print()
    print(format_curve_table(
        {"coverage": result.recall_curve(), "F1": result.f1_curve()},
        step=10, title="progress by #questions",
    ))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serving import TenantPool, serve

    if args.metrics_out:
        obs.enable()
    corpus = load_dataset(args.dataset, num_sentences=args.num_sentences,
                          seed=args.seed, parse_trees=False)
    bank = load_bank(args.dataset)
    seed_rule = args.seed_rule or bank.default_seed_rules[0]
    config = DarwinConfig(
        budget=args.budget,
        num_candidates=1000,
        classifier=ClassifierConfig(epochs=args.epochs),
        index=IndexConfig(coverage_backend=args.coverage_backend,
                          arena_path=args.arena_path,
                          bitset_cache_bytes=args.bitset_cache_bytes),
    )
    crowd_config = CrowdConfig(
        num_annotators=args.annotators,
        redundancy=args.redundancy,
        batch_size=args.batch_size,
        budget=args.budget,
        annotator_latency=args.latency,
        label_noise=args.noise,
        seed=args.seed,
    )
    print(f"dataset={args.dataset} sentences={len(corpus)} "
          f"positives={len(corpus.positive_ids())} seed rule={seed_rule!r}")
    with TenantPool(
        corpus, config,
        seeds={"rule_texts": [seed_rule]},
        expected_digest=args.expected_digest,
        dataset_spec={"name": args.dataset,
                      "options": {"num_sentences": args.num_sentences,
                                  "seed": args.seed, "parse_trees": False}},
    ) as pool:
        arena = pool.index.store.arena
        if arena is not None:
            print(f"shared arena: {arena.path} ({arena.values_bytes} column "
                  f"bytes, read-only, digest {pool.arena_digest[:16]}…)")
        print(f"serving {args.tenants} tenants × {args.annotators} annotators "
              f"(redundancy={args.redundancy}, batch_size={args.batch_size})")
        report = serve(pool, num_tenants=args.tenants, crowd_config=crowd_config)
        print(f"\ncommitted {report.questions_committed} questions across "
              f"{len(report.results)} tenants in {report.wall_seconds:.2f}s "
              f"({report.answers_per_sec:.1f} answers/s)")
        print(format_table(
            ["tenant", "questions", "rules", "coverage", "overlay interns",
             "resident B"],
            [
                [tid, r.crowd.questions_committed,
                 len(r.crowd.darwin_result.rule_set),
                 r.crowd.darwin_result.final_recall,
                 r.overlay_interned, r.resident_bytes]
                for tid, r in sorted(report.results.items())
            ],
            title="per-tenant outcomes",
        ))
        memory = report.memory
        shared = memory["shared_resident_bytes"]
        per_tenant = memory["tenant_resident_bytes"]
        print(f"shared resident state: {shared:,.0f} B (once per pool); "
              f"tenant overlays: {per_tenant:,.0f} B total "
              f"({per_tenant / max(len(report.results), 1):,.0f} B/tenant)")
        cache = pool.featurizer.cache.stats()
        print(f"feature cache: {cache['cached_vectors']:.0f} vectors, "
              f"{cache['hits']:.0f} hits / {cache['misses']:.0f} misses")
        if args.metrics_out:
            # Snapshot while the pool is still open so its collectors run.
            obs.write_snapshot(args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out}")
    return 0


def _command_serve_http(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from .config import GatewayConfig
    from .errors import ReproError
    from .gateway import GatewayApp, TokenAuthenticator, build_server
    from .serving import TenantPool

    # The gateway always runs instrumented: /metrics is part of its surface.
    # Enable before any component exists so every instrument binds live.
    obs.enable()
    try:
        gateway_config = GatewayConfig(
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            deadline_ms=args.deadline_ms,
            retry_after_s=args.retry_after,
            auth_tokens_path=args.auth_tokens,
            checkpoint_dir=args.checkpoint_dir,
            allow_debug_ops=args.allow_debug_ops,
        )
        # Validate the token table before the (slow) corpus build so a bad
        # --auth-tokens path fails in milliseconds, not after dataset load.
        authenticator = TokenAuthenticator.from_file(
            gateway_config.auth_tokens_path
        )
        if args.coverage_backend == "arena" and args.arena_path:
            parent = os.path.dirname(os.path.abspath(args.arena_path))
            if not os.path.isdir(parent):
                raise ReproError(
                    f"arena directory does not exist: {parent}"
                )
        corpus = load_dataset(args.dataset, num_sentences=args.num_sentences,
                              seed=args.seed, parse_trees=False)
        bank = load_bank(args.dataset)
        seed_rule = args.seed_rule or bank.default_seed_rules[0]
        config = DarwinConfig(
            budget=args.budget,
            num_candidates=1000,
            classifier=ClassifierConfig(epochs=args.epochs),
            index=IndexConfig(coverage_backend=args.coverage_backend,
                              arena_path=args.arena_path),
        )
        crowd_config = CrowdConfig(
            num_annotators=args.annotators,
            redundancy=args.redundancy,
            batch_size=args.batch_size,
            budget=args.budget,
            annotator_latency=0.0,
            seed=args.seed,
        )
        seeds = {"rule_texts": [seed_rule]}
        dataset_spec = {"name": args.dataset,
                        "options": {"num_sentences": args.num_sentences,
                                    "seed": args.seed,
                                    "parse_trees": False}}

        def _run_gateway(app: GatewayApp, topology: str) -> None:
            server = build_server(app)

            def _drain_signal(signum: int, frame: object) -> None:
                # Stop admitting immediately; shutdown() must run on another
                # thread — called from the serving thread it deadlocks.
                app.begin_drain()
                threading.Thread(
                    target=server.stop, name="gateway-shutdown", daemon=True
                ).start()

            signal.signal(signal.SIGTERM, _drain_signal)
            signal.signal(signal.SIGINT, _drain_signal)
            tenants = app.backend.tenant_ids()
            print(f"gateway listening on {server.url} "
                  f"({topology}; {len(tenants)} tenants: "
                  f"{', '.join(tenants)})")
            print(f"auth: {'bearer tokens' if app.auth.enabled else 'disabled'}"
                  f"; queue depth {gateway_config.queue_depth}; "
                  f"deadline {gateway_config.deadline_ms:.0f}ms")
            sys.stdout.flush()
            if args.ready_file:
                with open(args.ready_file, "w", encoding="utf-8") as handle:
                    json.dump({"url": server.url, "port": server.port,
                               "pid": os.getpid(), "tenants": tenants,
                               "workers": max(args.workers, 1)}, handle)
            server.serve_forever()
            # serve_forever returned: the drain signal fired (or stop() was
            # called). Finish: flush coordinators, final checkpoints,
            # metrics snapshot.
            paths = app.finish_drain(metrics_snapshot_path=args.metrics_out)
            print("gateway drained; final checkpoints:")
            for tenant_id, path in sorted(paths.items()):
                print(f"  {tenant_id}: {path}")
            if args.metrics_out:
                print(f"metrics snapshot written to {args.metrics_out}")

        if args.workers > 1:
            from .config import FleetConfig
            from .fleet import FleetSupervisor
            from .gateway import FleetBackend

            supervisor = FleetSupervisor(
                corpus, config,
                fleet=FleetConfig(workers=args.workers,
                                  start_method=args.start_method,
                                  workdir=args.fleet_workdir),
                crowd_config=crowd_config,
                seeds=seeds,
                dataset_spec=dataset_spec,
                allow_debug_ops=args.allow_debug_ops,
            )
            with supervisor:
                supervisor.spawn_tenants(args.tenants)
                app = GatewayApp(
                    config=gateway_config,
                    crowd_config=crowd_config,
                    authenticator=authenticator,
                    backend=FleetBackend(
                        supervisor, gateway_config.checkpoint_dir
                    ),
                )
                _run_gateway(app, f"fleet of {args.workers} workers")
            return 0

        with TenantPool(
            corpus, config,
            seeds=seeds,
            dataset_spec=dataset_spec,
        ) as pool:
            pool.spawn_many(args.tenants)
            app = GatewayApp(
                pool, gateway_config, crowd_config, authenticator=authenticator
            )
            _run_gateway(app, "in-process pool")
    except ReproError as exc:
        print(f"serve-http: {exc}", file=sys.stderr)
        return 2
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    if bool(args.metrics) == bool(args.checkpoint):
        print("stats: pass exactly one of --metrics or --checkpoint",
              file=sys.stderr)
        return 2
    if args.metrics:
        payload = obs.read_snapshot(args.metrics)
        snapshot = payload.get("metrics") or {}
        spans = payload.get("spans") or []
        source = args.metrics
    else:
        from .engine.state import read_checkpoint_summary

        manifest, _ = read_checkpoint_summary(args.checkpoint)
        snapshot = manifest.get("metrics") or {}
        spans = []
        source = args.checkpoint
    if args.format == "prometheus":
        from .obs.prometheus import render_snapshot

        sys.stdout.write(render_snapshot(snapshot))
        return 0
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    summary = obs.summarize_snapshot(snapshot)
    if not summary:
        print(f"{source}: no telemetry recorded (metrics were disabled)")
        return 0
    print(f"telemetry from {source}:")
    questions = summary.get("questions")
    if questions:
        print(f"  questions: {questions['total']:.0f} "
              f"({questions['yes']:.0f} yes / {questions['no']:.0f} no)")
    if "retrains" in summary:
        print(f"  classifier retrains: {summary['retrains']:.0f}")
    for block in ("feature_cache", "bitset_cache"):
        cache = summary.get(block)
        if cache:
            print(f"  {block}: {cache['hits']:.0f} hits / "
                  f"{cache['misses']:.0f} misses "
                  f"(ratio {cache['hit_ratio']:.2f})")
    commits = summary.get("crowd_commits")
    if commits:
        print(f"  crowd commits: {commits['accept']:.0f} accepted / "
              f"{commits['reject']:.0f} rejected")
    gateway = summary.get("gateway")
    if gateway:
        print(f"  gateway: {gateway['requests']:.0f} requests "
              f"({gateway['rejected']:.0f} rejected, "
              f"{gateway['errors_5xx']:.0f} 5xx)")
    phases = summary.get("phases")
    if phases:
        print(format_table(
            ["phase", "count", "mean ms", "p50 ms", "p95 ms"],
            [
                [name, f"{entry['count']:.0f}", f"{entry['mean_ms']:.2f}",
                 f"{entry['p50_ms']:.2f}", f"{entry['p95_ms']:.2f}"]
                for name, entry in sorted(phases.items())
            ],
            title="per-phase latency",
        ))
    if spans:
        print(f"  trace: {len(spans)} root spans retained")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Deferred import: the checkers only load when linting is requested.
    from .analysis import run_lint

    return run_lint(
        args.paths,
        fmt=args.format,
        baseline=args.baseline,
        update_baseline=args.update_baseline,
        select=args.select,
    )


_COMMANDS = {
    "datasets": _command_datasets,
    "run": _command_run,
    "resume": _command_resume,
    "export-state": _command_export_state,
    "compare": _command_compare,
    "crowd": _command_crowd,
    "serve": _command_serve,
    "serve-http": _command_serve_http,
    "stats": _command_stats,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
