"""Dataset registry: one place to look up and load the five corpora."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DatasetError
from ..text.corpus import Corpus
from . import cause_effect, directions, musicians, professions, tweets
from .templates import TemplateBank


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata about one of the paper's datasets (Table 1 row).

    Attributes:
        name: Registry key.
        task: Labeling task type (Intents / Entities / Relations).
        paper_num_sentences: Corpus size reported in Table 1.
        paper_positive_fraction: Positive ratio reported in Table 1.
        default_num_sentences: Size generated at ``scale=1.0`` (differs from
            the paper only for professions, whose 1M sentences are optional).
        bank_factory: Zero-argument callable building the template bank.
    """

    name: str
    task: str
    paper_num_sentences: int
    paper_positive_fraction: float
    default_num_sentences: int
    bank_factory: Callable[[], TemplateBank]

    def build_bank(self) -> TemplateBank:
        """Construct the dataset's template bank."""
        return self.bank_factory()


_SPECS: Dict[str, DatasetSpec] = {
    "cause-effect": DatasetSpec(
        name="cause-effect",
        task="Relations",
        paper_num_sentences=cause_effect.PAPER_NUM_SENTENCES,
        paper_positive_fraction=cause_effect.PAPER_POSITIVE_FRACTION,
        default_num_sentences=cause_effect.PAPER_NUM_SENTENCES,
        bank_factory=cause_effect.build_bank,
    ),
    "directions": DatasetSpec(
        name="directions",
        task="Intents",
        paper_num_sentences=directions.PAPER_NUM_SENTENCES,
        paper_positive_fraction=directions.PAPER_POSITIVE_FRACTION,
        default_num_sentences=directions.PAPER_NUM_SENTENCES,
        bank_factory=directions.build_bank,
    ),
    "musicians": DatasetSpec(
        name="musicians",
        task="Entities",
        paper_num_sentences=musicians.PAPER_NUM_SENTENCES,
        paper_positive_fraction=musicians.PAPER_POSITIVE_FRACTION,
        default_num_sentences=musicians.PAPER_NUM_SENTENCES,
        bank_factory=musicians.build_bank,
    ),
    "professions": DatasetSpec(
        name="professions",
        task="Entities",
        paper_num_sentences=professions.PAPER_NUM_SENTENCES,
        paper_positive_fraction=professions.PAPER_POSITIVE_FRACTION,
        default_num_sentences=professions.DEFAULT_NUM_SENTENCES,
        bank_factory=professions.build_bank,
    ),
    "tweets": DatasetSpec(
        name="tweets",
        task="Intents",
        paper_num_sentences=tweets.PAPER_NUM_SENTENCES,
        paper_positive_fraction=tweets.PAPER_POSITIVE_FRACTION,
        default_num_sentences=tweets.PAPER_NUM_SENTENCES,
        bank_factory=tweets.build_bank,
    ),
}

DATASET_NAMES: Tuple[str, ...] = tuple(sorted(_SPECS))


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for ``name``."""
    spec = _SPECS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        )
    return spec


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    num_sentences: Optional[int] = None,
    positive_fraction: Optional[float] = None,
    parse_trees: bool = True,
    target_intent: str = "food",
) -> Corpus:
    """Generate one of the five corpora.

    Args:
        name: Dataset name (see :data:`DATASET_NAMES`).
        scale: Multiplier on the dataset's default size (0.1 = a tenth of the
            paper-scale corpus). Ignored when ``num_sentences`` is given.
        seed: RNG seed; the same (name, scale, seed) always yields the same
            corpus.
        num_sentences: Explicit corpus size override.
        positive_fraction: Explicit positive-ratio override (defaults to the
            paper's Table 1 ratio).
        parse_trees: Build dependency trees (disable for TokensRegex-only
            experiments on very large corpora).
        target_intent: For the tweets dataset, which intent is the positive
            class ("food", "travel" or "career").

    Returns:
        A labeled :class:`Corpus`.
    """
    spec = dataset_spec(name)
    if scale <= 0:
        raise DatasetError("scale must be positive")
    size = num_sentences if num_sentences is not None else max(
        50, int(round(spec.default_num_sentences * scale))
    )
    fraction = (
        positive_fraction
        if positive_fraction is not None
        else spec.paper_positive_fraction
    )
    if name == "tweets":
        bank = tweets.build_bank(target_intent)
    else:
        bank = spec.build_bank()
    return bank.generate(size, fraction, seed=seed, parse_trees=parse_trees)


def load_bank(name: str, target_intent: str = "food") -> TemplateBank:
    """The template bank for ``name`` (exposes seeds / keywords / lexicon)."""
    if name == "tweets":
        return tweets.build_bank(target_intent)
    return dataset_spec(name).build_bank()


def table1_rows(
    scale: float = 1.0, seed: int = 0, names: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Regenerate Table 1: per-dataset statistics of the generated corpora."""
    rows: List[Dict[str, object]] = []
    for name in names or DATASET_NAMES:
        spec = dataset_spec(name)
        corpus = load_dataset(name, scale=scale, seed=seed, parse_trees=False)
        description = corpus.describe()
        rows.append(
            {
                "dataset": name,
                "task": spec.task,
                "num_sentences": description["num_sentences"],
                "positive_fraction": description["positive_fraction"],
                "paper_num_sentences": spec.paper_num_sentences,
                "paper_positive_fraction": spec.paper_positive_fraction,
                "vocabulary_size": description["vocabulary_size"],
            }
        )
    return rows
