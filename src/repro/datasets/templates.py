"""A small template engine for synthetic corpus generation.

A dataset is described by a :class:`TemplateBank`: a set of positive
:class:`TemplateMode` groups (each mode is one "way of expressing the positive
class", with its own templates and slot fillers) plus negative modes. The bank
samples sentences with a target positive fraction, tracking which mode
produced each sentence in the sentence's ``meta`` field so experiments can
construct biased seed sets ("exclude every seed containing 'shuttle'").

Templates are plain strings with ``{slot}`` placeholders; slot fillers are
drawn uniformly from per-mode (or bank-level shared) filler lists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DatasetError
from ..text.corpus import Corpus
from ..text.dependency import DependencyParser
from ..text.pos import PosTagger
from ..text.sentence import Sentence
from ..text.tokenizer import Tokenizer
from ..utils.rng import derive_rng

_SLOT_PATTERN = re.compile(r"\{(\w+)\}")


@dataclass(frozen=True)
class TemplateMode:
    """One mode of a class: a named group of templates sharing slot fillers.

    Attributes:
        name: Mode identifier (stored in each generated sentence's ``meta``).
        templates: Template strings with ``{slot}`` placeholders.
        weight: Relative sampling weight among modes of the same class.
    """

    name: str
    templates: Tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.templates:
            raise DatasetError(f"mode {self.name!r} needs at least one template")
        if self.weight <= 0:
            raise DatasetError(f"mode {self.name!r} needs a positive weight")


@dataclass
class TemplateBank:
    """The full generative description of a synthetic dataset.

    Attributes:
        name: Dataset name.
        positive_modes: Modes generating positive sentences.
        negative_modes: Modes generating negative sentences.
        fillers: Slot name -> candidate filler strings (shared by all modes).
        lexicon: Extra word -> universal POS tag entries registered with the
            tagger so that domain nouns/verbs parse consistently.
        keyword_hints: The ~10 keywords an annotator would provide for the
            Keyword Sampling baseline.
        default_seed_rules: Seed rule strings used by the experiments.
        biased_exclude_token: Token excluded from seed sampling in the
            Figure 8 biased-seed experiment.
    """

    name: str
    positive_modes: Sequence[TemplateMode]
    negative_modes: Sequence[TemplateMode]
    fillers: Dict[str, Sequence[str]] = field(default_factory=dict)
    lexicon: Dict[str, str] = field(default_factory=dict)
    keyword_hints: Sequence[str] = field(default_factory=tuple)
    default_seed_rules: Sequence[str] = field(default_factory=tuple)
    biased_exclude_token: str = ""

    def __post_init__(self) -> None:
        if not self.positive_modes or not self.negative_modes:
            raise DatasetError("a template bank needs positive and negative modes")
        for mode in list(self.positive_modes) + list(self.negative_modes):
            for template in mode.templates:
                for slot in _SLOT_PATTERN.findall(template):
                    if slot not in self.fillers:
                        raise DatasetError(
                            f"template {template!r} uses unknown slot {slot!r}"
                        )

    # ------------------------------------------------------------- generation
    def generate(
        self,
        num_sentences: int,
        positive_fraction: float,
        seed: int = 0,
        parse_trees: bool = True,
    ) -> Corpus:
        """Sample a labeled corpus of ``num_sentences`` sentences.

        Args:
            num_sentences: Total corpus size.
            positive_fraction: Target fraction of positive sentences.
            seed: RNG seed; the same seed reproduces the same corpus.
            parse_trees: Build dependency trees (needed by TreeMatch).
        """
        if num_sentences <= 0:
            raise DatasetError("num_sentences must be positive")
        if not 0.0 < positive_fraction < 1.0:
            raise DatasetError("positive_fraction must be in (0, 1)")
        rng = derive_rng(seed, "dataset", self.name)
        num_positive = max(2, int(round(num_sentences * positive_fraction)))
        num_negative = max(1, num_sentences - num_positive)

        tokenizer = Tokenizer()
        tagger = PosTagger()
        if self.lexicon:
            tagger.add_lexicon(dict(self.lexicon))
        parser = DependencyParser()

        records: List[Tuple[str, bool, str]] = []
        records.extend(self._sample_class(self.positive_modes, num_positive, rng, True))
        records.extend(self._sample_class(self.negative_modes, num_negative, rng, False))
        rng.shuffle(records)

        sentences: List[Sentence] = []
        for sentence_id, (text, label, mode_name) in enumerate(records):
            tokens = tuple(tokenizer.tokenize(text))
            tags = tuple(tagger.tag(tokens))
            tree = parser.parse(tokens, tags) if parse_trees and tokens else None
            sentences.append(
                Sentence(
                    sentence_id=sentence_id,
                    text=text,
                    tokens=tokens,
                    tags=tags,
                    tree=tree,
                    label=label,
                    meta=mode_name,
                )
            )
        return Corpus(sentences, name=self.name)

    def _sample_class(
        self,
        modes: Sequence[TemplateMode],
        count: int,
        rng: np.random.Generator,
        label: bool,
    ) -> List[Tuple[str, bool, str]]:
        weights = np.array([mode.weight for mode in modes], dtype=np.float64)
        weights = weights / weights.sum()
        records: List[Tuple[str, bool, str]] = []
        for _ in range(count):
            mode = modes[int(rng.choice(len(modes), p=weights))]
            template = mode.templates[int(rng.integers(len(mode.templates)))]
            text = self._fill(template, rng)
            records.append((text, label, mode.name))
        return records

    def _fill(self, template: str, rng: np.random.Generator) -> str:
        def replace(match: re.Match) -> str:
            slot = match.group(1)
            choices = self.fillers[slot]
            return str(choices[int(rng.integers(len(choices)))])

        return _SLOT_PATTERN.sub(replace, template)

    # -------------------------------------------------------------- utilities
    def mode_names(self, positive_only: bool = True) -> List[str]:
        """Names of the modes (positive ones by default)."""
        modes = self.positive_modes if positive_only else (
            list(self.positive_modes) + list(self.negative_modes)
        )
        return [mode.name for mode in modes]
