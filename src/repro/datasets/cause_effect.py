"""The ``cause-effect`` dataset: relation extraction (SemEval-style).

Positive sentences describe a cause-and-effect relationship between two
entities ("the outbreak was caused by contaminated water"); negatives describe
other relationships (part-whole, containment, location, ownership, temporal).
The paper's benchmark (Socher et al. 2012 subset) has 10.7K sentences with
12.2% positives. Positive modes span the common causal connectives so the
rule space is diverse: "caused by", "triggered by", "leads to", "results in",
"due to", "induced by", "gives rise to", "stems from".
"""

from __future__ import annotations

from .templates import TemplateBank, TemplateMode

PAPER_NUM_SENTENCES = 10_700
PAPER_POSITIVE_FRACTION = 0.122

_FILLERS = {
    "bad_event": [
        "the outbreak", "the flooding", "the recession", "the blackout",
        "the crash", "the epidemic", "the famine", "the wildfire",
        "the landslide", "the shortage", "the collapse", "the crisis",
    ],
    "cause": [
        "contaminated water", "heavy rainfall", "a faulty transformer",
        "the heat wave", "a software bug", "poor maintenance",
        "the virus", "a gas leak", "the drought", "rising prices",
        "a design flaw", "human error", "the earthquake",
    ],
    "effect": [
        "widespread damage", "severe delays", "a sharp drop in sales",
        "massive protests", "a spike in prices", "power outages",
        "crop failure", "health problems", "traffic congestion",
        "water shortages", "school closures",
    ],
    "condition": [
        "the infection", "the inflammation", "the allergy", "the fever",
        "the migraine", "the fatigue", "the rash", "the anxiety",
    ],
    "agent": [
        "the bacteria", "the medication", "the pollen", "the stress",
        "the exposure", "the deficiency", "the mutation", "the toxin",
    ],
    "place": [
        "the valley", "the coastal region", "the capital", "the province",
        "the island", "the district", "the harbor", "the plateau",
    ],
    "object": [
        "the engine", "the keyboard", "the bridge", "the cabinet",
        "the telescope", "the turbine", "the antenna", "the pipeline",
    ],
    "part": [
        "a piston", "several keys", "a steel beam", "two drawers",
        "a mirror", "a rotor blade", "a receiver", "a valve",
    ],
    "container": ["the box", "the warehouse", "the crate", "the cellar",
                  "the drawer", "the tank", "the shed"],
    "content": ["old letters", "spare parts", "grain", "wine bottles",
                "documents", "fuel", "tools"],
    "org": ["the ministry", "the university", "the museum", "the council",
            "the committee", "the foundation", "the institute"],
    "year": ["1998", "2003", "2008", "2011", "2015", "2017", "2019"],
}

_POSITIVE_MODES = (
    TemplateMode(
        name="caused_by",
        templates=(
            "{bad_event} was caused by {cause}.",
            "{bad_event} in {place} was caused by {cause}.",
            "Investigators concluded that {bad_event} had been caused by {cause}.",
            "Scientists say {bad_event} has been caused by {cause}.",
            "{condition} is often caused by {agent}.",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="triggered_by",
        templates=(
            "{bad_event} was triggered by {cause}.",
            "{condition} can be triggered by {agent}.",
            "The alarm was triggered by {cause} late at night.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="leads_to",
        templates=(
            "{cause} often leads to {effect}.",
            "Experts warned that {cause} leads to {effect} in {place}.",
            "{cause} eventually led to {effect}.",
        ),
    ),
    TemplateMode(
        name="results_in",
        templates=(
            "{cause} resulted in {effect} across {place}.",
            "{cause} results in {effect} when left unchecked.",
            "The failure resulted in {effect} within hours.",
        ),
    ),
    TemplateMode(
        name="due_to",
        templates=(
            "{bad_event} occurred due to {cause}.",
            "Flights were delayed due to {cause}.",
            "{effect} was largely due to {cause}.",
        ),
    ),
    TemplateMode(
        name="induced",
        templates=(
            "{condition} was induced by {agent}.",
            "{agent} induced {condition} in several patients.",
        ),
    ),
    TemplateMode(
        name="gives_rise",
        templates=(
            "{cause} gives rise to {effect}.",
            "{cause} gave rise to {effect} throughout {place}.",
        ),
    ),
    TemplateMode(
        name="stems_from",
        templates=(
            "{effect} stems from {cause}.",
            "Analysts believe {effect} stems from {cause}.",
        ),
    ),
)

_NEGATIVE_MODES = (
    TemplateMode(
        name="part_whole",
        templates=(
            "{object} contains {part} made of aluminum.",
            "{part} was removed from {object} during the repair.",
            "{object} consists of {part} and a frame.",
            "{part} is a component of {object}.",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="content_container",
        templates=(
            "{container} was filled with {content}.",
            "{content} were stored in {container} for years.",
            "Workers moved {content} into {container}.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="location",
        templates=(
            "{org} is located in {place}.",
            "The ceremony took place in {place} in {year}.",
            "{object} was installed near {place}.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="ownership",
        templates=(
            "{org} acquired {object} in {year}.",
            "{org} owns several buildings in {place}.",
            "{object} belongs to {org}.",
        ),
    ),
    TemplateMode(
        name="temporal",
        templates=(
            "The exhibition opened in {place} in {year}.",
            "{org} was founded in {year}.",
            "The renovation of {object} finished in {year}.",
        ),
    ),
    TemplateMode(
        name="description",
        templates=(
            "{object} was painted bright red last summer.",
            "{org} announced a new program for students in {place}.",
            "{container} near the entrance is rarely used.",
        ),
    ),
)

_LEXICON = {
    "caused": "VERB", "triggered": "VERB", "leads": "VERB", "led": "VERB",
    "resulted": "VERB", "results": "VERB", "induced": "VERB", "stems": "VERB",
    "outbreak": "NOUN", "flooding": "NOUN", "recession": "NOUN",
    "blackout": "NOUN", "epidemic": "NOUN", "famine": "NOUN",
    "wildfire": "NOUN", "landslide": "NOUN", "drought": "NOUN",
    "infection": "NOUN", "inflammation": "NOUN", "bacteria": "NOUN",
    "contains": "VERB", "consists": "VERB", "belongs": "VERB",
    "acquired": "VERB", "founded": "VERB",
}


def build_bank() -> TemplateBank:
    """The template bank for the cause-effect dataset."""
    return TemplateBank(
        name="cause-effect",
        positive_modes=_POSITIVE_MODES,
        negative_modes=_NEGATIVE_MODES,
        fillers=_FILLERS,
        lexicon=_LEXICON,
        keyword_hints=(
            "caused", "cause", "triggered", "leads", "results", "due",
            "induced", "effect", "rise", "stems",
        ),
        default_seed_rules=("has been caused by",),
        biased_exclude_token="triggered",
    )


def generate(num_sentences: int = PAPER_NUM_SENTENCES,
             positive_fraction: float = PAPER_POSITIVE_FRACTION,
             seed: int = 0,
             parse_trees: bool = True):
    """Generate the cause-effect corpus at the requested size."""
    return build_bank().generate(
        num_sentences, positive_fraction, seed=seed, parse_trees=parse_trees
    )
