"""Synthetic dataset generators mirroring the paper's five corpora (Table 1).

The paper evaluates on cause-effect (relation extraction), directions (intent
classification, internal dataset), musicians and professions (entity
extraction) and tweets (intent classification). None of those corpora are
available offline, so each module here generates a synthetic corpus with the
properties that drive the paper's results: the same task type, a comparable
class imbalance, and — crucially — many *distinct* positive "modes", each with
its own characteristic phrases, so that adaptive rule discovery has a diverse
rule space to explore while a labeled random sample only ever exposes a few
modes.
"""

from .registry import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    load_dataset,
    table1_rows,
)
from .templates import TemplateBank, TemplateMode

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_spec",
    "load_dataset",
    "table1_rows",
    "TemplateBank",
    "TemplateMode",
]
