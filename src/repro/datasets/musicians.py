"""The ``musicians`` dataset: entity extraction over Wikipedia-style sentences.

Positive sentences mention a musician (the paper's ground truth comes from
NELL's knowledge base); negatives are Wikipedia-style sentences about other
topics (cities, politicians, science, sports, companies). The paper's corpus
has 15.8K sentences with 10% positives. Positive modes are spread across
different musician roles ("composer", "pianist", "singer", "guitarist",
"band", "album/recording", "symphony/opera") so that rules such as the seed
keyword "composer" cover only one slice of the positives.
"""

from __future__ import annotations

from .templates import TemplateBank, TemplateMode

PAPER_NUM_SENTENCES = 15_800
PAPER_POSITIVE_FRACTION = 0.10

_FILLERS = {
    "musician": [
        "Beethoven", "Mozart", "Chopin", "Liszt", "Brahms", "Verdi",
        "Stravinsky", "Debussy", "Coltrane", "Davis", "Hendrix", "Lennon",
        "Dylan", "Armstrong", "Ellington", "Parker", "Clapton", "Mercury",
        "Prince", "Bowie",
    ],
    "person": [
        "Lincoln", "Curie", "Darwin", "Edison", "Tesla", "Roosevelt",
        "Churchill", "Gandhi", "Newton", "Kepler", "Turing", "Lovelace",
    ],
    "city": [
        "Vienna", "Paris", "London", "Berlin", "Prague", "Chicago",
        "New Orleans", "Liverpool", "Detroit", "Nashville", "Seattle",
    ],
    "country": ["Austria", "Germany", "France", "England", "Italy",
                "Hungary", "Poland", "Russia", "Spain", "America"],
    "instrument": ["piano", "violin", "guitar", "trumpet", "cello",
                   "saxophone", "drums", "organ", "flute", "bass"],
    "work": [
        "symphony", "concerto", "sonata", "opera", "nocturne", "quartet",
        "requiem", "ballad", "overture", "suite",
    ],
    "album": [
        "a debut album", "a live album", "a studio album", "a jazz record",
        "a platinum record", "an acclaimed album",
    ],
    "band": [
        "the quartet", "the orchestra", "the band", "the ensemble",
        "the trio", "the philharmonic",
    ],
    "year": ["1804", "1824", "1887", "1923", "1956", "1969", "1975", "1984"],
    "profession_other": [
        "physicist", "politician", "novelist", "painter", "general",
        "architect", "economist", "chemist", "mathematician", "explorer",
    ],
    "sport": ["football", "tennis", "baseball", "cricket", "basketball"],
    "company": ["the railway company", "the steel works", "the trading house",
                "the shipping firm", "the textile mill"],
    "field": ["physics", "chemistry", "astronomy", "economics", "philosophy",
              "medicine", "geology", "mathematics"],
}

_POSITIVE_MODES = (
    TemplateMode(
        name="composer",
        templates=(
            "{musician} was a celebrated composer from {country}.",
            "The composer {musician} settled in {city} in {year}.",
            "As a composer , {musician} wrote a famous {work} in {year}.",
            "{musician} worked as a court composer in {city}.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="instrumentalist",
        templates=(
            "{musician} taught piano to the daughters of a countess.",
            "{musician} played the {instrument} in {band} for many years.",
            "{musician} was regarded as the finest {instrument} player in {city}.",
            "{musician} began studying the {instrument} at the age of five.",
            "{musician} performed a {instrument} recital in {city} in {year}.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="singer",
        templates=(
            "{musician} became a famous singer after touring {country}.",
            "The singer {musician} performed at the opera house in {city}.",
            "{musician} sang lead vocals for {band} during the tour.",
        ),
    ),
    TemplateMode(
        name="recording",
        templates=(
            "{musician} recorded {album} in {city} in {year}.",
            "{musician} released {album} that topped the charts in {year}.",
            "The musician {musician} recorded {album} with {band}.",
        ),
    ),
    TemplateMode(
        name="works",
        templates=(
            "{musician} composed the {work} that premiered in {city}.",
            "The {work} by {musician} premiered in {year}.",
            "{musician} conducted his own {work} with {band} in {city}.",
        ),
    ),
    TemplateMode(
        name="band_member",
        templates=(
            "{musician} founded {band} in {city} in {year}.",
            "{musician} joined {band} as the lead guitarist in {year}.",
            "{musician} toured {country} with {band} playing the {instrument}.",
        ),
    ),
)

_NEGATIVE_MODES = (
    TemplateMode(
        name="science",
        templates=(
            "{person} was a pioneering {profession_other} from {country}.",
            "{person} made important discoveries in {field} in {year}.",
            "{person} published a landmark paper on {field} while living in {city}.",
            "The {profession_other} {person} lectured on {field} in {city}.",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="geography",
        templates=(
            "{city} is the largest city in {country} by population.",
            "{city} became an important trading hub in {year}.",
            "The river flows through {city} before reaching the sea.",
            "{city} hosted the world exposition in {year}.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="politics",
        templates=(
            "{person} was elected to parliament in {year}.",
            "{person} led the delegation from {country} in {year}.",
            "The treaty was signed in {city} in {year}.",
            "{person} served as governor of the province for a decade.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="sports",
        templates=(
            "The {sport} club from {city} won the championship in {year}.",
            "{person} coached the national {sport} team of {country}.",
            "The {sport} final was held in {city} in {year}.",
        ),
    ),
    TemplateMode(
        name="industry",
        templates=(
            "{company} opened a new factory near {city} in {year}.",
            "{company} employed thousands of workers in {country}.",
            "{person} founded {company} in {city}.",
        ),
    ),
    TemplateMode(
        name="history",
        templates=(
            "The old bridge in {city} was rebuilt in {year}.",
            "A great fire destroyed much of {city} in {year}.",
            "The university in {city} was founded in {year}.",
        ),
    ),
)

_LEXICON = {
    "composer": "NOUN", "pianist": "NOUN", "singer": "NOUN", "guitarist": "NOUN",
    "musician": "NOUN", "piano": "NOUN", "violin": "NOUN", "guitar": "NOUN",
    "trumpet": "NOUN", "cello": "NOUN", "saxophone": "NOUN", "symphony": "NOUN",
    "concerto": "NOUN", "sonata": "NOUN", "opera": "NOUN", "album": "NOUN",
    "orchestra": "NOUN", "band": "NOUN", "premiered": "VERB", "toured": "VERB",
    "conducted": "VERB", "vocals": "NOUN", "physicist": "NOUN",
    "politician": "NOUN", "novelist": "NOUN",
}


def build_bank() -> TemplateBank:
    """The template bank for the musicians dataset."""
    return TemplateBank(
        name="musicians",
        positive_modes=_POSITIVE_MODES,
        negative_modes=_NEGATIVE_MODES,
        fillers=_FILLERS,
        lexicon=_LEXICON,
        keyword_hints=(
            "composer", "piano", "singer", "guitar", "album", "band",
            "symphony", "opera", "recorded", "musician",
        ),
        default_seed_rules=("composer",),
        biased_exclude_token="composer",
    )


def generate(num_sentences: int = PAPER_NUM_SENTENCES,
             positive_fraction: float = PAPER_POSITIVE_FRACTION,
             seed: int = 0,
             parse_trees: bool = True):
    """Generate the musicians corpus at the requested size."""
    return build_bank().generate(
        num_sentences, positive_fraction, seed=seed, parse_trees=parse_trees
    )
