"""The ``directions`` dataset: hotel-concierge intent classification (Example 1).

Positive sentences ask for directions or means of transportation from one
location to another; negatives are every other kind of guest question
(food, check-in, amenities, billing...). The paper's internal corpus has
15.3K sentences with 3.8% positives; the synthetic bank reproduces that
imbalance and, importantly, spreads the positives over many lexical modes
("best way to get", "shuttle", "bart", "uber/taxi", "walking distance",
"how far", "bus/train", "directions to") so that no single rule — and no
small random labeled sample — covers them all.
"""

from __future__ import annotations

from .templates import TemplateBank, TemplateMode

PAPER_NUM_SENTENCES = 15_300
PAPER_POSITIVE_FRACTION = 0.038

_FILLERS = {
    "destination": [
        "the airport", "SFO airport", "the convention center", "downtown",
        "the train station", "union square", "the ferry building", "the pier",
        "the stadium", "the museum", "golden gate park", "the mall",
        "the beach", "chinatown", "the university", "the hospital",
        "the aquarium", "the theater", "the zoo", "fisherman 's wharf",
    ],
    "origin": [
        "the hotel", "here", "the lobby", "my room", "the conference hall",
        "the restaurant", "the parking garage",
    ],
    "ride": ["uber", "lyft", "a taxi", "a cab", "a rideshare"],
    "transit": ["bart", "the bus", "the train", "the subway", "the tram",
                "the ferry", "caltrain", "the shuttle bus", "the cable car"],
    "food": [
        "pizza", "sushi", "a burger", "room service", "breakfast", "pasta",
        "thai food", "a sandwich", "dessert", "coffee", "tacos", "ramen",
    ],
    "meal": ["breakfast", "lunch", "dinner", "brunch"],
    "amenity": [
        "the pool", "the gym", "the spa", "the business center",
        "the rooftop bar", "the laundry room", "the ice machine",
        "the vending machine", "the fitness center",
    ],
    "room_item": [
        "extra towels", "more pillows", "a blanket", "a crib", "an iron",
        "a hair dryer", "toiletries", "a bathrobe", "slippers",
    ],
    "time": ["tonight", "tomorrow morning", "this afternoon", "right now",
             "later today", "this evening", "at noon", "before 9 am"],
    "issue": [
        "the air conditioning", "the wifi", "the television", "the shower",
        "the heater", "the safe", "the minibar", "the key card",
    ],
    "event": ["a wedding", "a conference", "a birthday dinner",
              "a business meeting", "an anniversary"],
}

_POSITIVE_MODES = (
    TemplateMode(
        name="best_way",
        templates=(
            "What is the best way to get to {destination}?",
            "What would be the best way to get to {destination} from {origin}?",
            "Could you tell me the best way to reach {destination}?",
            "What is the quickest way to get to {destination} from {origin}?",
            "What is the easiest way to get from {origin} to {destination}?",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="shuttle",
        templates=(
            "Is there a shuttle to {destination}?",
            "Does the hotel run a shuttle to {destination}?",
            "What time does the shuttle to {destination} leave?",
            "Can I book the shuttle from {origin} to {destination}?",
            "Is the shuttle to {destination} free for guests?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="bart_transit",
        templates=(
            "Is there a bart from {destination} to {origin}?",
            "Can I take {transit} to {destination} from {origin}?",
            "Does {transit} stop near {destination}?",
            "Which {transit} line goes to {destination}?",
            "Do I need a ticket for {transit} to {destination}?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="rideshare",
        templates=(
            "Is {ride} the fastest way to get to {destination}?",
            "How much would {ride} cost to {destination}?",
            "Should I take {ride} or {transit} to {destination}?",
            "Can you call {ride} to take me to {destination}?",
            "How long does {ride} take to {destination} from {origin}?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="walking",
        templates=(
            "Is {destination} within walking distance from {origin}?",
            "Can I walk to {destination} from {origin}?",
            "How long is the walk from {origin} to {destination}?",
            "Is it safe to walk to {destination} at night?",
        ),
    ),
    TemplateMode(
        name="how_far",
        templates=(
            "How far is {destination} from {origin}?",
            "How long does it take to reach {destination} from {origin}?",
            "How many miles is {destination} from {origin}?",
        ),
    ),
    TemplateMode(
        name="directions",
        templates=(
            "Can you give me directions to {destination}?",
            "Could you print directions from {origin} to {destination}?",
            "I need directions to {destination} please.",
            "Which exit should I take for {destination}?",
        ),
    ),
    TemplateMode(
        name="airport_transfer",
        templates=(
            "How do I get to the airport from {origin}?",
            "What time should I leave {origin} to catch my flight at the airport?",
            "Do you arrange airport transfers from {origin}?",
        ),
    ),
)

_NEGATIVE_MODES = (
    TemplateMode(
        name="food_order",
        templates=(
            "What is the best way to order {food} from you?",
            "Would Uber Eats be the fastest way to order {food}?",
            "Can I order {food} to my room {time}?",
            "Do you serve {meal} at the restaurant downstairs?",
            "What time does the kitchen stop serving {food}?",
            "Could you recommend a place for {meal} near the hotel?",
            "Is {food} available on the room service menu?",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="check_in",
        templates=(
            "What is the best way to check in there?",
            "Can I check in early {time}?",
            "What time is check out {time}?",
            "Can I get a late check out for my room?",
            "Do you need my passport at check in?",
            "Is there a fee for early check in?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="amenities",
        templates=(
            "What time does {amenity} open {time}?",
            "Is {amenity} free for hotel guests?",
            "Where can I find {amenity} in the hotel?",
            "Do I need to reserve {amenity} in advance?",
            "Is {amenity} open {time}?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="room_requests",
        templates=(
            "Could you send {room_item} to my room {time}?",
            "Can I get {room_item} please?",
            "We need {room_item} in room 512.",
            "Is it possible to have {room_item} delivered {time}?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="maintenance",
        templates=(
            "{issue} in my room is not working.",
            "Can someone fix {issue} {time}?",
            "There is a problem with {issue} in my room.",
            "The password for {issue} is not working.",
        ),
    ),
    TemplateMode(
        name="billing",
        templates=(
            "Can I get an invoice for my stay emailed to me?",
            "Why was my card charged twice for the room?",
            "Do you accept cash for incidentals?",
            "Can I split the bill between two cards?",
        ),
    ),
    TemplateMode(
        name="events",
        templates=(
            "Do you host {event} at the hotel?",
            "How much does it cost to book the ballroom for {event}?",
            "Can you recommend a florist for {event}?",
        ),
    ),
    TemplateMode(
        name="small_talk",
        templates=(
            "What is the weather supposed to be like {time}?",
            "Can you recommend something fun to do {time}?",
            "Is the hotel pet friendly?",
            "Do you have adapters for european plugs?",
            "What channel is the game on {time}?",
        ),
    ),
)

_LEXICON = {
    "shuttle": "NOUN", "bart": "PROPN", "uber": "PROPN", "lyft": "PROPN",
    "taxi": "NOUN", "cab": "NOUN", "airport": "NOUN", "hotel": "NOUN",
    "downtown": "NOUN", "wifi": "NOUN", "pool": "NOUN", "gym": "NOUN",
    "spa": "NOUN", "directions": "NOUN", "walk": "VERB", "sfo": "PROPN",
    "caltrain": "PROPN", "bus": "NOUN", "train": "NOUN", "subway": "NOUN",
    "ferry": "NOUN", "tram": "NOUN",
}


def build_bank() -> TemplateBank:
    """The template bank for the directions dataset."""
    return TemplateBank(
        name="directions",
        positive_modes=_POSITIVE_MODES,
        negative_modes=_NEGATIVE_MODES,
        fillers=_FILLERS,
        lexicon=_LEXICON,
        keyword_hints=(
            "way", "get", "shuttle", "bart", "uber", "taxi", "bus",
            "airport", "directions", "walk",
        ),
        default_seed_rules=("best way to get to",),
        biased_exclude_token="shuttle",
    )


def generate(num_sentences: int = PAPER_NUM_SENTENCES,
             positive_fraction: float = PAPER_POSITIVE_FRACTION,
             seed: int = 0,
             parse_trees: bool = True):
    """Generate the directions corpus at the requested size."""
    return build_bank().generate(
        num_sentences, positive_fraction, seed=seed, parse_trees=parse_trees
    )
