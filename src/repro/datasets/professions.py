"""The ``professions`` dataset: entity extraction over web-crawl style text.

Positive sentences mention a profession (scientist, teacher, nurse, ...); the
paper's corpus is a 1M-sentence ClueWeb sample with only 1.1% positives — the
most imbalanced of the five tasks and the one used for the scalability
discussion. The synthetic bank reproduces the extreme imbalance and the wide
variety of profession mentions (job titles, "works as a ...", "hired as a ...",
"X is a NOUN" patterns that the TreeMatch grammar captures as
``/is/NOUN ∧ job``-style rules).

Generating the full 1M sentences is supported (``scale=1.0`` in the registry)
but slow in pure Python; the experiments default to a scaled-down corpus that
keeps the imbalance.
"""

from __future__ import annotations

from .templates import TemplateBank, TemplateMode

PAPER_NUM_SENTENCES = 1_000_000
PAPER_POSITIVE_FRACTION = 0.011
DEFAULT_NUM_SENTENCES = 50_000

_FILLERS = {
    "profession": [
        "scientist", "teacher", "engineer", "nurse", "lawyer", "architect",
        "accountant", "journalist", "electrician", "plumber", "surgeon",
        "pharmacist", "librarian", "firefighter", "carpenter", "translator",
        "paramedic", "veterinarian", "economist", "dentist",
    ],
    "name": [
        "Maria", "James", "Elena", "Robert", "Priya", "Ahmed", "Lucia",
        "Daniel", "Sofia", "Miguel", "Anna", "David", "Fatima", "John",
        "Wei", "Laura", "Omar", "Grace", "Ivan", "Nadia",
    ],
    "org": [
        "the city hospital", "the public school", "the engineering firm",
        "the law office", "the research institute", "the local clinic",
        "the university", "the power company", "the fire department",
        "the construction company", "the newspaper",
    ],
    "place": [
        "the suburbs", "the old town", "the industrial district",
        "the waterfront", "the north side", "the village", "the county",
    ],
    "product": [
        "a new phone", "running shoes", "a coffee maker", "a used car",
        "garden furniture", "a laptop", "winter tires", "a mattress",
        "a headset", "board games",
    ],
    "topic": [
        "the weather", "the election", "the traffic", "the new mall",
        "the football match", "the holiday season", "the concert",
        "the road works", "the festival", "the farmers market",
    ],
    "site_action": [
        "sign up", "log in", "subscribe", "leave a comment",
        "share this post", "read more", "download the app",
    ],
    "price": ["$19", "$49", "$99", "$129", "$250", "$15", "$75"],
    "year": ["2005", "2009", "2012", "2014", "2016", "2018"],
}

_POSITIVE_MODES = (
    TemplateMode(
        name="is_a_profession",
        templates=(
            "{name} is a {profession} at {org}.",
            "{name} is a {profession} who lives near {place}.",
            "My neighbor {name} is a {profession} and a volunteer.",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="works_as",
        templates=(
            "{name} works as a {profession} at {org}.",
            "{name} has worked as a {profession} for over ten years.",
            "{name} worked as a {profession} before moving to {place}.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="hired",
        templates=(
            "{org} hired {name} as a {profession} in {year}.",
            "{org} is looking to hire an experienced {profession}.",
            "{name} was hired as the new {profession} at {org}.",
        ),
    ),
    TemplateMode(
        name="career",
        templates=(
            "{name} trained as a {profession} at {org}.",
            "{name} retired after a long career as a {profession}.",
            "{name} studied for years to become a {profession}.",
        ),
    ),
    TemplateMode(
        name="job_posting",
        templates=(
            "We are seeking a certified {profession} to join {org}.",
            "The {profession} job at {org} pays well and includes benefits.",
            "Apply today for the {profession} position at {org}.",
        ),
    ),
)

_NEGATIVE_MODES = (
    TemplateMode(
        name="shopping",
        templates=(
            "You can buy {product} online for {price}.",
            "{product} is on sale this week for {price}.",
            "I ordered {product} and it arrived in two days.",
            "The store near {place} sells {product} at a discount.",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="chatter",
        templates=(
            "Everyone was talking about {topic} this morning.",
            "I can not believe how long {topic} lasted this year.",
            "Did you hear the news about {topic}?",
            "People near {place} complained about {topic}.",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="web_boilerplate",
        templates=(
            "Click here to {site_action} and get updates.",
            "Please {site_action} to continue reading this article.",
            "You must {site_action} before posting a reply.",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="events",
        templates=(
            "The fair near {place} starts next weekend.",
            "Tickets for the show at {org} go on sale in {year}.",
            "The parade passed through {place} on Saturday.",
        ),
    ),
    TemplateMode(
        name="reviews",
        templates=(
            "The food at the diner near {place} was amazing.",
            "Service was slow but the view of {place} made up for it.",
            "Would not recommend the motel near {place} to anyone.",
        ),
    ),
    TemplateMode(
        name="howto",
        templates=(
            "Here is how to fix {product} without calling anyone.",
            "This guide explains how to install {product} step by step.",
            "Learn how to clean {product} with household items.",
        ),
    ),
)

_LEXICON = {
    "scientist": "NOUN", "teacher": "NOUN", "engineer": "NOUN", "nurse": "NOUN",
    "lawyer": "NOUN", "architect": "NOUN", "accountant": "NOUN",
    "journalist": "NOUN", "electrician": "NOUN", "plumber": "NOUN",
    "surgeon": "NOUN", "pharmacist": "NOUN", "librarian": "NOUN",
    "firefighter": "NOUN", "carpenter": "NOUN", "translator": "NOUN",
    "paramedic": "NOUN", "veterinarian": "NOUN", "economist": "NOUN",
    "dentist": "NOUN", "job": "NOUN", "career": "NOUN", "hired": "VERB",
    "works": "VERB", "worked": "VERB", "retired": "VERB", "studied": "VERB",
}


def build_bank() -> TemplateBank:
    """The template bank for the professions dataset."""
    return TemplateBank(
        name="professions",
        positive_modes=_POSITIVE_MODES,
        negative_modes=_NEGATIVE_MODES,
        fillers=_FILLERS,
        lexicon=_LEXICON,
        keyword_hints=(
            "scientist", "teacher", "engineer", "nurse", "lawyer", "job",
            "hired", "career", "works", "position",
        ),
        default_seed_rules=("works as a",),
        biased_exclude_token="teacher",
    )


def generate(num_sentences: int = DEFAULT_NUM_SENTENCES,
             positive_fraction: float = PAPER_POSITIVE_FRACTION,
             seed: int = 0,
             parse_trees: bool = True):
    """Generate the professions corpus (scaled down from 1M by default)."""
    return build_bank().generate(
        num_sentences, positive_fraction, seed=seed, parse_trees=parse_trees
    )
