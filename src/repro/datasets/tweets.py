"""The ``tweets`` dataset: intent classification over short social posts.

The paper uses the intent-mining benchmark of Wang et al. (2015) and focuses
on the Food intent (11.4% of 2130 tweets), also reporting Travel and Career.
The synthetic bank generates short, informal posts; the positive class is the
Food intent by default, with Travel and Career available as alternative
targets so the "similar behaviour for other intents" observation can be
reproduced (``build_bank(target_intent=...)``).
"""

from __future__ import annotations

from ..errors import DatasetError
from .templates import TemplateBank, TemplateMode

PAPER_NUM_SENTENCES = 2130
PAPER_POSITIVE_FRACTION = 0.114

INTENTS = ("food", "travel", "career")

_FILLERS = {
    "dish": [
        "pizza", "tacos", "ramen", "sushi", "a burger", "pancakes",
        "fried chicken", "pho", "dumplings", "ice cream", "bbq", "curry",
    ],
    "meal": ["breakfast", "lunch", "dinner", "brunch", "a late night snack"],
    "restaurant": [
        "that new taco place", "the diner downtown", "the ramen shop",
        "the pizza joint on 5th", "the sushi bar", "the food truck",
    ],
    "city": [
        "Tokyo", "Paris", "Lisbon", "Bali", "Iceland", "Mexico City",
        "New York", "Rome", "Bangkok", "Hawaii",
    ],
    "transport": ["flight", "road trip", "train ride", "ferry", "red eye"],
    "job_thing": [
        "interview", "resume", "internship", "promotion", "new job",
        "cover letter", "job offer", "first day", "performance review",
    ],
    "company_type": ["startup", "bank", "design studio", "nonprofit", "lab"],
    "show": ["the new series", "the game", "the finale", "the playoffs",
             "that movie", "the concert"],
    "feeling": ["so tired", "super excited", "kind of bored", "really happy",
                "a little stressed", "completely done"],
    "weather": ["raining all day", "way too hot", "freezing", "finally sunny",
                "so windy"],
    "chore": ["laundry", "taxes", "the dishes", "grocery shopping",
              "cleaning the garage"],
}

_FOOD_MODES = (
    TemplateMode(
        name="craving",
        templates=(
            "craving {dish} so bad right now",
            "i could really go for {dish} tonight",
            "all i can think about is {dish}",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="where_to_eat",
        templates=(
            "anyone know a good spot for {meal} near campus ?",
            "where should we go for {meal} tomorrow ?",
            "looking for the best {dish} in town , any tips ?",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="hungry",
        templates=(
            "so hungry i might order {dish} again",
            "skipped {meal} and now i am starving",
            "need {dish} immediately",
        ),
    ),
    TemplateMode(
        name="restaurant_plans",
        templates=(
            "trying {restaurant} for {meal} tonight",
            "finally got a table at {restaurant}",
            "meeting friends at {restaurant} for {meal}",
        ),
    ),
    TemplateMode(
        name="cooking",
        templates=(
            "making {dish} from scratch tonight , wish me luck",
            "just learned how to cook {dish}",
            "meal prep sunday : {dish} for the whole week",
        ),
    ),
)

_TRAVEL_MODES = (
    TemplateMode(
        name="trip_planning",
        templates=(
            "booking a {transport} to {city} next month",
            "finally planning that trip to {city}",
            "counting down the days until {city}",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="wanderlust",
        templates=(
            "i just want to be on a beach in {city} right now",
            "dreaming about {city} again",
            "someone take me to {city} please",
        ),
    ),
    TemplateMode(
        name="on_the_road",
        templates=(
            "airport wifi is terrible but {city} here we come",
            "longest {transport} ever but we made it to {city}",
            "packing for {city} at 2 am as usual",
        ),
    ),
)

_CAREER_MODES = (
    TemplateMode(
        name="job_search",
        templates=(
            "just sent my resume to a {company_type} , fingers crossed",
            "third {job_thing} this week , exhausting",
            "updating my {job_thing} for the hundredth time",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="work_life",
        templates=(
            "got the {job_thing} !!! so excited to start",
            "my {job_thing} at the {company_type} went really well",
            "big day tomorrow : {job_thing} at a {company_type}",
        ),
    ),
    TemplateMode(
        name="hustle",
        templates=(
            "grinding on my portfolio before the {job_thing}",
            "negotiating salary is the worst part of any {job_thing}",
        ),
    ),
)

_MISC_MODES = (
    TemplateMode(
        name="tv_sports",
        templates=(
            "cannot believe how {show} ended last night",
            "staying in to watch {show} again",
            "who else is watching {show} right now ?",
        ),
        weight=2.0,
    ),
    TemplateMode(
        name="mood",
        templates=(
            "feeling {feeling} today for no reason",
            "monday mornings leave me {feeling}",
            "{feeling} but pretending everything is fine",
        ),
        weight=1.5,
    ),
    TemplateMode(
        name="weather",
        templates=(
            "it has been {weather} here , unreal",
            "why is it {weather} in the middle of april",
        ),
    ),
    TemplateMode(
        name="chores",
        templates=(
            "spent the whole weekend doing {chore}",
            "still putting off {chore} , oops",
        ),
    ),
)

_LEXICON = {
    "craving": "VERB", "starving": "ADJ", "hungry": "ADJ", "pizza": "NOUN",
    "tacos": "NOUN", "ramen": "NOUN", "sushi": "NOUN", "burger": "NOUN",
    "brunch": "NOUN", "resume": "NOUN", "interview": "NOUN",
    "internship": "NOUN", "flight": "NOUN", "trip": "NOUN", "wifi": "NOUN",
    "airport": "NOUN", "booking": "VERB", "packing": "VERB",
}

_INTENT_MODES = {
    "food": _FOOD_MODES,
    "travel": _TRAVEL_MODES,
    "career": _CAREER_MODES,
}

_INTENT_SEEDS = {
    "food": ("craving",),
    "travel": ("trip to",),
    "career": ("my resume",),
}

_INTENT_KEYWORDS = {
    "food": ("craving", "hungry", "pizza", "dinner", "lunch", "eat",
             "restaurant", "cook", "snack", "brunch"),
    "travel": ("trip", "flight", "airport", "beach", "booking", "packing",
               "vacation", "city", "travel", "hotel"),
    "career": ("resume", "interview", "job", "internship", "promotion",
               "salary", "career", "offer", "hired", "portfolio"),
}


def build_bank(target_intent: str = "food") -> TemplateBank:
    """The template bank for the tweets dataset targeting ``target_intent``.

    Sentences of the two non-target intents become negatives alongside the
    miscellaneous chatter, matching how the paper evaluates one intent at a
    time.
    """
    if target_intent not in INTENTS:
        raise DatasetError(f"unknown intent {target_intent!r}; choose from {INTENTS}")
    positive_modes = _INTENT_MODES[target_intent]
    negative_modes = list(_MISC_MODES)
    for intent, modes in _INTENT_MODES.items():
        if intent != target_intent:
            negative_modes.extend(modes)
    return TemplateBank(
        name=f"tweets-{target_intent}",
        positive_modes=positive_modes,
        negative_modes=tuple(negative_modes),
        fillers=_FILLERS,
        lexicon=_LEXICON,
        keyword_hints=_INTENT_KEYWORDS[target_intent],
        default_seed_rules=_INTENT_SEEDS[target_intent],
        biased_exclude_token="craving" if target_intent == "food" else "trip",
    )


def generate(num_sentences: int = PAPER_NUM_SENTENCES,
             positive_fraction: float = PAPER_POSITIVE_FRACTION,
             seed: int = 0,
             target_intent: str = "food",
             parse_trees: bool = True):
    """Generate the tweets corpus for ``target_intent``."""
    return build_bank(target_intent).generate(
        num_sentences, positive_fraction, seed=seed, parse_trees=parse_trees
    )
