"""Memory-mapped coverage arena: interned coverage columns on disk.

The columnar coverage store (PR 1) keeps every distinct coverage as an
immutable sorted ``int32`` array, and the checkpoint protocol (PR 3) already
serializes those arrays as one values+offsets CSR column pair. This module
moves that column pair into a **memory-mapped file**, so corpora whose
coverage columns do not fit in RAM stay queryable: a
:class:`~repro.index.coverage.CoverageView` backed by the arena hands out a
zero-copy ``np.memmap`` slice, and the OS page cache — not the Python heap —
decides which coverage bytes are resident. The design follows the
extracted-graph-materialization tradeoff of "Extracting and Analyzing Hidden
Graphs from Relational Databases" (Xirogiannopoulos & Deshpande): keep a
compact on-disk representation and expand views lazily.

File layout (append-friendly, one values segment per append batch)::

    [ header   ] HEADER_SIZE bytes — JSON (magic, schema version, counts,
                 content digest), padded with spaces.
    [ values   ] num_values * int32, little-endian. Appends only ever
                 extend this column, so existing slices stay valid.
    [ offsets  ] (num_interned + 1) * int64 footer (slot ``i`` is
                 ``values[offsets[i]:offsets[i+1]]``).

Every append batch **self-commits**: the new values extend the column (over
the previous footer, which the values column grows into), the footer is
rewritten after the new extent, and the header — the commit point — is
updated last. Readers trust only the counts the header records, so the file
is consistent after every batch; a crash *mid-batch* leaves the arena
detectably corrupt (the next :meth:`CoverageArena.open` fails loudly), never
silently wrong — rebuild the index to regenerate a scratch arena. The
content digest (BLAKE2b over the values column plus the offsets footer) is
verified on every reattach, so a truncated, corrupted, or swapped arena
file raises :class:`~repro.errors.ConfigurationError`; note this also means
a checkpoint's arena *reference* is pinned to the exact contents at save
time — appending to the arena afterwards (e.g. reusing the file for a new
build) deliberately invalidates older checkpoint references.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

ARENA_MAGIC = "repro-coverage-arena"
ARENA_SCHEMA_VERSION = 1
"""Bump whenever the header layout or column dtypes change."""

HEADER_SIZE = 4096
"""Fixed byte budget for the JSON header at the start of the file."""

VALUES_DTYPE = np.dtype("<i4")
OFFSETS_DTYPE = np.dtype("<i8")

DEFAULT_BITSET_CACHE_BYTES = 8 << 20
"""Default LRU byte budget for lazily materialized packed bitsets (8 MiB)."""


@dataclass(frozen=True)
class ArenaConfig:
    """Tuning knobs for an arena-backed coverage store.

    Attributes:
        path: Arena file location. ``None`` creates an unlinked-on-close
            temporary file — convenient for ``run --coverage-backend arena``
            without a dedicated path, but such arenas cannot be reattached
            after the process exits (checkpoints record the temp path and
            fail loudly on resume; pass a real path for durable runs).
        bitset_cache_bytes: LRU byte budget for packed bitsets materialized
            on the ``top_by_overlap``/benefit fast paths. ``0`` disables the
            bitset fast path entirely (merge intersections only).
    """

    path: Optional[str] = None
    bitset_cache_bytes: int = DEFAULT_BITSET_CACHE_BYTES

    def __post_init__(self) -> None:
        if self.bitset_cache_bytes < 0:
            raise ConfigurationError("bitset_cache_bytes must be non-negative")


def _content_digest(values_digest: "hashlib._Hash", offsets: np.ndarray) -> str:
    """Hex digest committing to both columns (values incrementally hashed)."""
    combined = values_digest.copy()
    combined.update(np.ascontiguousarray(offsets, dtype=OFFSETS_DTYPE).tobytes())
    return combined.hexdigest()


def _new_values_digest() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=16)


class CoverageArena:
    """One append-friendly memory-mapped file of interned coverage columns.

    Use :meth:`create` for a fresh arena and :meth:`open` to reattach an
    existing file (e.g. after a process restart, driven by a checkpoint's
    arena reference). Slots are dense ``0..num_interned-1`` in append order;
    slot contents are immutable once appended.
    """

    def __init__(
        self,
        path: str,
        file,
        offsets: List[int],
        values_digest: "hashlib._Hash",
        owns_temp: bool = False,
        read_only: bool = False,
    ) -> None:
        self.path = path
        self._file = file
        self._offsets: List[int] = offsets
        self._values_digest = values_digest
        self._values_map: Optional[np.ndarray] = None
        self._mapped_values = 0
        self._read_only = read_only
        self._dirty = not read_only
        if owns_temp:
            self._temp_finalizer = weakref.finalize(
                self, _unlink_quietly, path
            )
        else:
            self._temp_finalizer = None

    # -------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, path: Optional[str] = None) -> "CoverageArena":
        """Create a fresh arena at ``path`` (or a temp file when ``None``)."""
        owns_temp = path is None
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-arena-", suffix=".bin")
            os.close(handle)
        try:
            file = open(path, "w+b")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create coverage arena at {path}: {exc}"
            ) from exc
        arena = cls(
            path,
            file,
            offsets=[0],
            values_digest=_new_values_digest(),
            owns_temp=owns_temp,
        )
        arena.flush()
        return arena

    @classmethod
    def open(
        cls,
        path: str,
        expected_digest: Optional[str] = None,
        read_only: bool = False,
    ) -> "CoverageArena":
        """Reattach the arena at ``path``, verifying header and content.

        With ``read_only=True`` the file is opened without write access and
        :meth:`append_many` is refused — the multi-tenant attach mode, where
        many tenants map one immutable arena and nothing may mutate the
        shared columns. Raises :class:`~repro.errors.ConfigurationError` when
        the file is missing, is not an arena, is truncated, fails its own
        recorded digest, or (when given) does not match ``expected_digest``
        — the checkpoint-reference reattach path.
        """
        try:
            file = open(path, "rb" if read_only else "r+b")
        except FileNotFoundError:
            raise ConfigurationError(
                f"coverage arena file not found: {path}"
            ) from None
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open coverage arena {path}: {exc}"
            ) from exc
        try:
            header = cls._read_header(file, path)
            num_interned = int(header["num_interned"])
            num_values = int(header["num_values"])
            values_end = HEADER_SIZE + num_values * VALUES_DTYPE.itemsize
            footer_end = values_end + (num_interned + 1) * OFFSETS_DTYPE.itemsize
            file.seek(0, os.SEEK_END)
            if file.tell() < footer_end:
                raise ConfigurationError(
                    f"coverage arena {path} is truncated: header records "
                    f"{num_values} values / {num_interned} slots but the file "
                    f"is {file.tell()} bytes (need {footer_end})"
                )
            values_digest = _new_values_digest()
            file.seek(HEADER_SIZE)
            remaining = num_values * VALUES_DTYPE.itemsize
            while remaining:
                chunk = file.read(min(remaining, 1 << 22))
                if not chunk:
                    raise ConfigurationError(
                        f"coverage arena {path} ended mid-values"
                    )
                values_digest.update(chunk)
                remaining -= len(chunk)
            offsets = np.frombuffer(
                file.read((num_interned + 1) * OFFSETS_DTYPE.itemsize),
                dtype=OFFSETS_DTYPE,
            )
            if offsets.size != num_interned + 1:
                raise ConfigurationError(
                    f"coverage arena {path} ended mid-offsets"
                )
            if (
                offsets.size == 0
                or int(offsets[0]) != 0
                or int(offsets[-1]) != num_values
                or (offsets.size > 1 and bool(np.any(np.diff(offsets) < 0)))
            ):
                raise ConfigurationError(
                    f"coverage arena {path} has an inconsistent offsets column"
                )
            digest = _content_digest(values_digest, offsets)
            recorded = header.get("digest")
            if recorded is not None and digest != recorded:
                raise ConfigurationError(
                    f"coverage arena {path} is corrupted: content digest "
                    f"{digest} does not match the recorded {recorded}"
                )
            if expected_digest is not None and digest != expected_digest:
                raise ConfigurationError(
                    f"coverage arena {path} does not match its checkpoint "
                    f"reference: digest {digest} != expected {expected_digest} "
                    f"(the arena was modified after the checkpoint was taken)"
                )
        except BaseException:
            file.close()
            raise
        arena = cls(
            path,
            file,
            offsets=[int(o) for o in offsets],
            values_digest=values_digest,
            read_only=read_only,
        )
        arena._dirty = False
        return arena

    @staticmethod
    def _read_header(file, path: str) -> dict:
        file.seek(0)
        raw = file.read(HEADER_SIZE)
        if len(raw) < HEADER_SIZE:
            raise ConfigurationError(
                f"{path} is not a coverage arena (file shorter than its header)"
            )
        try:
            header = json.loads(raw.decode("utf-8").rstrip())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"{path} is not a coverage arena (unreadable header: {exc})"
            ) from exc
        if not isinstance(header, dict) or header.get("magic") != ARENA_MAGIC:
            raise ConfigurationError(f"{path} is not a coverage arena file")
        version = header.get("schema_version")
        if version != ARENA_SCHEMA_VERSION:
            raise ConfigurationError(
                f"coverage arena {path} has schema version {version!r}; this "
                f"build reads version {ARENA_SCHEMA_VERSION}"
            )
        if (
            header.get("values_dtype") != VALUES_DTYPE.str
            or header.get("offsets_dtype") != OFFSETS_DTYPE.str
        ):
            raise ConfigurationError(
                f"coverage arena {path} uses unsupported column dtypes "
                f"({header.get('values_dtype')}/{header.get('offsets_dtype')})"
            )
        return header

    def close(self) -> None:
        """Flush, close the file, and drop the arena's own memory map.

        Idempotent: calling it twice (or after garbage collection already ran
        a finalizer) is a no-op. Views handed out earlier keep their own
        reference to the memmap they were sliced from, so they stay readable;
        the arena merely stops pinning the mapping itself, which is what
        lets Windows-style strict-unlink filesystems delete the file once the
        last view dies. Appends and fresh slices raise after close.
        """
        file = self._file
        if file is not None and not file.closed:
            if self._dirty and not self._read_only:
                self.flush()
            file.close()
        # Release the mapping eagerly instead of waiting for GC: the open
        # mmap — not the closed file handle — is what blocks strict-unlink.
        self._values_map = None
        self._mapped_values = 0

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (or the backing file is gone)."""
        return self._file is None or self._file.closed

    @property
    def read_only(self) -> bool:
        """True when attached without write access (multi-tenant mode)."""
        return self._read_only

    def reopen_read_only(self) -> "CoverageArena":
        """Flush and swap the writable handle for a read-only one, in place.

        The freeze point of a :class:`~repro.serving.TenantPool` build:
        after this call the columns are immutable and the arena can be
        shared across tenants with the same guarantees as a
        ``open(path, read_only=True)`` attach. Existing views stay valid —
        they reference the mapping, not the file handle. Returns ``self``.
        """
        if self._read_only:
            return self
        if self.closed:
            raise ConfigurationError(
                f"coverage arena {self.path} is closed; cannot reopen"
            )
        if self._dirty:
            self.flush()
        self._file.close()
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot reopen coverage arena {self.path} read-only: {exc}"
            ) from exc
        self._read_only = True
        self._dirty = False
        return self

    def detach(self) -> None:
        """Release the file descriptor and mapping, keeping slot metadata.

        The pre-fork half of the cross-process handoff: a supervisor that
        built and sealed the arena detaches before spawning workers, so no
        child ever inherits the parent's mapping — each worker calls
        :meth:`reattach` (a fresh ``open`` of the same path) in its own
        process. Only a read-only arena may detach; offsets, digest state,
        and the path survive, so :meth:`reattach` can verify it is looking
        at the same contents. Idempotent.
        """
        if self.closed:
            return
        if not self._read_only:
            raise ConfigurationError(
                f"coverage arena {self.path} is writable; seal it with "
                f"reopen_read_only() before detaching"
            )
        self._file.close()
        self._values_map = None
        self._mapped_values = 0

    def reattach(self) -> "CoverageArena":
        """Reopen the arena file by path with a fresh descriptor and mapping.

        The post-spawn half of the handoff: verifies the on-disk header still
        records the digest this arena object carries (a swapped or truncated
        file raises :class:`~repro.errors.ConfigurationError` instead of
        serving wrong coverage bytes), then attaches read-only. A no-op when
        already attached. Returns ``self``.
        """
        if not self.closed:
            return self
        try:
            file = open(self.path, "rb")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot reattach coverage arena {self.path}: {exc}"
            ) from exc
        try:
            header = self._read_header(file, self.path)
            recorded = header.get("digest")
            if recorded is not None and recorded != self.digest:
                raise ConfigurationError(
                    f"coverage arena {self.path} changed on disk since detach: "
                    f"digest {recorded} != expected {self.digest}"
                )
            if int(header.get("num_interned", -1)) != self.num_interned:
                raise ConfigurationError(
                    f"coverage arena {self.path} records "
                    f"{header.get('num_interned')} slots on disk but this "
                    f"handle expects {self.num_interned}"
                )
        except BaseException:
            file.close()
            raise
        self._file = file
        self._read_only = True
        self._dirty = False
        self._values_map = None
        self._mapped_values = 0
        return self

    # -------------------------------------------------------------- accessors
    @property
    def num_interned(self) -> int:
        """Number of slots appended so far."""
        return len(self._offsets) - 1

    @property
    def num_values(self) -> int:
        """Total int32 values across all slots."""
        return self._offsets[-1]

    @property
    def values_bytes(self) -> int:
        """On-disk size of the values column."""
        return self.num_values * VALUES_DTYPE.itemsize

    def offsets_array(self) -> np.ndarray:
        """The offsets column as an ``int64`` array (copy, cheap)."""
        return np.asarray(self._offsets, dtype=np.int64)

    @property
    def digest(self) -> str:
        """Content digest over the current values + offsets columns."""
        return _content_digest(self._values_digest, self.offsets_array())

    def slot_length(self, slot: int) -> int:
        """Number of ids in ``slot``."""
        return self._offsets[slot + 1] - self._offsets[slot]

    def values_slice(self, slot: int) -> np.ndarray:
        """Zero-copy read-only mmap slice for ``slot``'s sorted id array."""
        if not 0 <= slot < self.num_interned:
            raise ConfigurationError(
                f"coverage arena has no slot {slot} (num_interned="
                f"{self.num_interned})"
            )
        start, stop = self._offsets[slot], self._offsets[slot + 1]
        if start == stop:
            empty = np.empty(0, dtype=np.int32)
            empty.setflags(write=False)
            return empty
        values = self._ensure_map(stop)
        return values[start:stop]

    def _ensure_map(self, upto: int) -> np.ndarray:
        """A read-only memmap covering at least the first ``upto`` values.

        The map only ever grows; slices handed out earlier keep their own
        reference to the memmap they were cut from, so remapping after an
        append never invalidates existing views.
        """
        if self._values_map is None or self._mapped_values < upto:
            if self.closed:
                raise ConfigurationError(
                    f"coverage arena {self.path} is closed; cannot map values"
                )
            if not self._read_only:
                self._file.flush()
            count = self.num_values
            self._values_map = np.memmap(
                self.path,
                dtype=VALUES_DTYPE,
                mode="r",
                offset=HEADER_SIZE,
                shape=(count,),
            )
            self._values_map.flags.writeable = False
            self._mapped_values = count
        return self._values_map

    # ---------------------------------------------------------------- appends
    def append(self, ids: np.ndarray) -> int:
        """Append one sorted ``int32`` id array; returns its slot index."""
        return self.append_many([ids])[0]

    def append_many(self, arrays: Sequence[np.ndarray]) -> List[int]:
        """Append several id arrays with one values write; returns their slots.

        This is the column-concatenation primitive: the arrays become one
        contiguous values segment, and the offsets column is extended by
        rebasing each array's extent onto the current ``num_values`` — the
        same operation the parallel index build uses to fold shard arenas
        into the final arena. The batch self-commits (footer + header are
        rewritten before returning), so the file is consistent between any
        two appends; only a crash *inside* this call corrupts the arena,
        and that corruption is detected loudly by the next :meth:`open`.
        """
        if not arrays:
            return []
        if self._read_only:
            raise ConfigurationError(
                f"coverage arena {self.path} is attached read-only; tenant "
                f"interns belong in an OverlayCoverageStore, not the shared "
                f"columns"
            )
        if self.closed:
            raise ConfigurationError(
                f"coverage arena {self.path} is closed; cannot append"
            )
        slots: List[int] = []
        chunks: List[bytes] = []
        for array in arrays:
            array = np.ascontiguousarray(array, dtype=VALUES_DTYPE)
            slots.append(len(self._offsets) - 1)
            self._offsets.append(self._offsets[-1] + int(array.size))
            if array.size:
                chunks.append(array.tobytes())
        payload = b"".join(chunks)
        if payload:
            self._file.seek(HEADER_SIZE + (self._offsets[slots[0]]) * VALUES_DTYPE.itemsize)
            self._file.write(payload)
            self._values_digest.update(payload)
        self._dirty = True
        self.flush()
        return slots

    def append_from(self, other: "CoverageArena", slots: Sequence[int]) -> List[int]:
        """Concatenate the given ``other``-arena slots into this arena.

        Returns the new slot indices, in order. Used by the parallel build to
        merge shard arenas: each shard contributes one segment of values,
        with offsets rebased onto this arena's current extent.
        """
        return self.append_many([other.values_slice(slot) for slot in slots])

    # ------------------------------------------------------------ persistence
    def flush(self) -> None:
        """Write the offsets footer and commit the header (no-op when clean).

        Footer first, then the header — the commit point — so an interrupted
        flush is detected as corruption by :meth:`open` instead of being
        read as a half-updated state.
        """
        if self._file is None or self._file.closed or not self._dirty:
            return
        offsets = self.offsets_array()
        self._file.seek(HEADER_SIZE + self.values_bytes)
        self._file.write(offsets.astype(OFFSETS_DTYPE, copy=False).tobytes())
        self._file.flush()
        header = {
            "magic": ARENA_MAGIC,
            "schema_version": ARENA_SCHEMA_VERSION,
            "values_dtype": VALUES_DTYPE.str,
            "offsets_dtype": OFFSETS_DTYPE.str,
            "num_interned": self.num_interned,
            "num_values": self.num_values,
            "digest": _content_digest(self._values_digest, offsets),
        }
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        if len(encoded) > HEADER_SIZE:
            raise ConfigurationError(
                "coverage arena header exceeds its fixed size"
            )
        self._file.seek(0)
        self._file.write(encoded.ljust(HEADER_SIZE, b" "))
        self._file.flush()
        self._dirty = False

    def __repr__(self) -> str:
        return (
            f"CoverageArena(path={self.path!r}, slots={self.num_interned}, "
            f"values={self.num_values})"
        )


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
