"""Corpus indexing: derivation sketches, the merged corpus index, hierarchies."""

from .sketch import DerivationSketch, build_sketch
from .trie_index import CorpusIndex, IndexNode
from .hierarchy import RuleHierarchy

__all__ = [
    "DerivationSketch",
    "build_sketch",
    "CorpusIndex",
    "IndexNode",
    "RuleHierarchy",
]
