"""Corpus indexing: derivation sketches, the merged corpus index, hierarchies,
and the columnar coverage store backing all of them (with an optional
memory-mapped arena backend for larger-than-memory coverage columns)."""

from .arena import ArenaConfig, CoverageArena
from .coverage import (
    CoverageStore,
    CoverageView,
    batched_new_counts,
    batched_overlap_counts,
)
from .nodetable import NodeTable, lexicographic_ranks
from .overlay import OverlayCoverageStore
from .sketch import DerivationSketch, build_sketch
from .trie_index import CorpusIndex, IndexNode
from .hierarchy import RuleHierarchy

__all__ = [
    "ArenaConfig",
    "CoverageArena",
    "CoverageStore",
    "CoverageView",
    "batched_new_counts",
    "batched_overlap_counts",
    "NodeTable",
    "lexicographic_ranks",
    "OverlayCoverageStore",
    "DerivationSketch",
    "build_sketch",
    "CorpusIndex",
    "IndexNode",
    "RuleHierarchy",
]
