"""Corpus indexing: derivation sketches, the merged corpus index, hierarchies,
and the columnar coverage store backing all of them."""

from .coverage import CoverageStore, CoverageView
from .sketch import DerivationSketch, build_sketch
from .trie_index import CorpusIndex, IndexNode
from .hierarchy import RuleHierarchy

__all__ = [
    "CoverageStore",
    "CoverageView",
    "DerivationSketch",
    "build_sketch",
    "CorpusIndex",
    "IndexNode",
    "RuleHierarchy",
]
