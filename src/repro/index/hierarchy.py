"""The candidate-heuristic hierarchy (Section 3.2).

The hierarchy ``H`` organizes a manageable set of candidate heuristics into a
DAG whose edges capture subset/superset coverage relations: parents are more
general (larger coverage), children more specific. Key operations needed by
the traversal strategies:

* ``parents(rule)`` / ``children(rule)`` in O(1) — LocalSearch expands these
  neighbourhoods after each oracle answer,
* membership and removal — UniversalSearch removes queried rules,
* cleanup — drop rules that add no new positives relative to already-accepted
  coverage (Section 3.2, "Hierarchical Arrangement and edge discovery"),
* on-the-fly growth — LocalSearch skips pre-generation and expands lazily.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..errors import TraversalError
from ..rules.heuristic import LabelingHeuristic
from .coverage import batched_new_counts
from .nodetable import NodeTable, lexicographic_ranks


class RuleHierarchy:
    """A DAG of candidate labeling heuristics ordered by generality.

    Neighbourhood accessors (:meth:`parents`, :meth:`children`,
    :meth:`roots`, :meth:`leaves`) return rules sorted by the stable node
    rank — ``(coverage desc, render asc, insertion order)`` — never raw
    set-iteration order, so traversal and checkpoints are order-stable
    across Python hash seeds. Reachability queries run over an
    interval-encoded :class:`~repro.index.nodetable.NodeTable` built lazily
    from the current graph and invalidated on mutation.
    """

    def __init__(self) -> None:
        self._nodes: Dict[LabelingHeuristic, None] = {}
        self._parents: Dict[LabelingHeuristic, Set[LabelingHeuristic]] = {}
        self._children: Dict[LabelingHeuristic, Set[LabelingHeuristic]] = {}
        # Stable per-rule sort key: (-|C_r|, render, insertion index). The
        # final component makes keys unique, so sorts are total orders.
        self._sort_keys: Dict[LabelingHeuristic, Tuple[int, str, int]] = {}
        self._insertions = 0
        self._table: Optional[NodeTable] = None
        self._table_rules: List[LabelingHeuristic] = []
        self._table_positions: Dict[LabelingHeuristic, int] = {}

    # --------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, rule: LabelingHeuristic) -> bool:
        return rule in self._nodes

    def __iter__(self) -> Iterator[LabelingHeuristic]:
        return iter(self._nodes)

    # ------------------------------------------------------------------ edits
    def add(self, rule: LabelingHeuristic) -> bool:
        """Add a candidate rule (no edges). Returns False if already present."""
        if rule in self._nodes:
            return False
        if rule.coverage_ids is None:
            raise TraversalError("hierarchy rules must have coverage computed")
        self._nodes[rule] = None
        self._parents[rule] = set()
        self._children[rule] = set()
        self._sort_keys[rule] = (
            -rule.coverage_size, rule.render(), self._insertions
        )
        self._insertions += 1
        self._table = None
        return True

    def add_edge(self, parent: LabelingHeuristic, child: LabelingHeuristic) -> None:
        """Record that ``child`` specializes ``parent``."""
        if parent not in self._nodes or child not in self._nodes:
            raise TraversalError("both endpoints must be in the hierarchy")
        if parent == child:
            return
        self._children[parent].add(child)
        self._parents[child].add(parent)
        self._table = None

    def remove(self, rule: LabelingHeuristic) -> None:
        """Remove ``rule``, reconnecting its children to its parents."""
        if rule not in self._nodes:
            return
        parents = self._parents.pop(rule, set())
        children = self._children.pop(rule, set())
        del self._nodes[rule]
        del self._sort_keys[rule]
        self._table = None
        for parent in parents:
            self._children[parent].discard(rule)
        for child in children:
            self._parents[child].discard(rule)
        for parent in parents:
            for child in children:
                self.add_edge(parent, child)

    # -------------------------------------------------------------- accessors
    def rules(self) -> List[LabelingHeuristic]:
        """All candidate rules currently in the hierarchy."""
        return list(self._nodes)

    def _ordered(
        self, rules: Iterable[LabelingHeuristic]
    ) -> List[LabelingHeuristic]:
        """Sort ``rules`` by the stable node rank (a total order)."""
        return sorted(rules, key=self._sort_keys.__getitem__)

    def parents(self, rule: LabelingHeuristic) -> List[LabelingHeuristic]:
        """Direct generalizations of ``rule``, in stable rank order."""
        return self._ordered(self._parents.get(rule, set()))

    def children(self, rule: LabelingHeuristic) -> List[LabelingHeuristic]:
        """Direct specializations of ``rule``, in stable rank order."""
        return self._ordered(self._children.get(rule, set()))

    def roots(self) -> List[LabelingHeuristic]:
        """Rules with no parents (most general), in stable rank order."""
        return self._ordered(
            rule for rule in self._nodes if not self._parents[rule]
        )

    def leaves(self) -> List[LabelingHeuristic]:
        """Rules with no children (most specific), in stable rank order."""
        return self._ordered(
            rule for rule in self._nodes if not self._children[rule]
        )

    # ------------------------------------------------------------- node table
    def node_table(self) -> NodeTable:
        """The interval-encoded node table over the current graph.

        Built lazily (one vectorized pass) and invalidated by any mutation;
        between mutations every reachability query is a window sweep over
        the same table.
        """
        if self._table is None:
            self._rebuild_table()
        return self._table

    def _rebuild_table(self) -> None:
        rules = list(self._nodes)
        positions = {rule: position for position, rule in enumerate(rules)}
        counts = np.fromiter(
            (rule.coverage_size for rule in rules),
            dtype=np.int64,
            count=len(rules),
        )
        # Renders are cached in the sort keys; lexsort ties fall back to
        # insertion order, matching the third sort-key component.
        ranks = lexicographic_ranks(
            counts, [self._sort_keys[rule][1] for rule in rules]
        )
        edges = [
            (positions[parent], positions[child])
            for child, parent_set in self._parents.items()
            for parent in parent_set
        ]
        self._table = NodeTable.build(len(rules), edges, counts=counts, ranks=ranks)
        self._table_rules = rules
        self._table_positions = positions

    # ---------------------------------------------------------------- queries
    def descendants(self, rule: LabelingHeuristic) -> Set[LabelingHeuristic]:
        """All rules reachable downward from ``rule`` (excluding itself)."""
        if rule not in self._nodes:
            return set()
        table = self.node_table()
        positions = table.descendants_of(self._table_positions[rule])
        return {self._table_rules[i] for i in positions.tolist()}

    def ancestors(self, rule: LabelingHeuristic) -> Set[LabelingHeuristic]:
        """All rules reachable upward from ``rule`` (excluding itself)."""
        if rule not in self._nodes:
            return set()
        table = self.node_table()
        positions = table.ancestors_of(self._table_positions[rule])
        return {self._table_rules[i] for i in positions.tolist()}

    def is_consistent(self) -> bool:
        """True if every edge goes from larger to smaller-or-equal coverage."""
        for parent, children in self._children.items():
            for child in children:
                if child.coverage_size > parent.coverage_size:
                    return False
        return True

    # ---------------------------------------------------------------- cleanup
    def cleanup(self, covered_ids) -> int:
        """Drop rules whose coverage adds nothing beyond ``covered_ids``.

        Accepts a set of sentence ids or a boolean coverage mask. Returns the
        number of removed rules. Mirrors the paper's cleanup step: the
        traversal will never query a heuristic that cannot add new positives.

        All interned-view rules are tested with **one** batched mask kernel
        (:func:`~repro.index.coverage.batched_new_counts`), and the removals
        are applied in a single pass (:meth:`_remove_batch`) instead of
        per-rule :meth:`remove` calls — sequential removal re-linked
        O(parents×children) edges per removed rule and transiently
        resurrected edges between rules that were about to be removed
        anyway. The surviving graph is identical (an edge ``p → q`` appears
        exactly when the original graph had a ``p → … → q`` path through
        removed rules only), without the churn.
        """
        if isinstance(covered_ids, np.ndarray) and covered_ids.dtype == np.bool_:
            mask: Optional[np.ndarray] = covered_ids
            covered_set: Set[int] = set()
        else:
            mask = None
            covered_set = set(covered_ids)

        removable: List[LabelingHeuristic] = []
        batched: List[LabelingHeuristic] = []
        for rule in self._nodes:
            view = rule.coverage_view
            if view is not None:
                if mask is not None:
                    batched.append(rule)
                elif view.count <= view.intersect_count(covered_set):
                    removable.append(rule)
            elif mask is not None:
                if not any(
                    sid >= mask.size or not mask[sid] for sid in rule.coverage
                ):
                    removable.append(rule)
            elif not (set(rule.coverage) - covered_set):
                removable.append(rule)
        if batched:
            new_counts = batched_new_counts(
                [rule.coverage_view for rule in batched], mask
            )
            removable.extend(
                rule for rule, new in zip(batched, new_counts.tolist()) if not new
            )
        self._remove_batch(removable)
        return len(removable)

    def _remove_batch(self, removable: List[LabelingHeuristic]) -> None:
        """Remove many rules in one pass, preserving surviving reachability.

        Equivalent to calling :meth:`remove` for each rule in any order: a
        surviving child is connected to every surviving ancestor reachable
        through removed-only paths, computed once per removed rule with a
        memoized upward sweep.
        """
        if not removable:
            return
        removed = set(removable)
        # memo[r] = surviving parents of removed rule r, looking upward
        # through removed-only paths. Iterative post-order (no recursion).
        memo: Dict[LabelingHeuristic, Set[LabelingHeuristic]] = {}

        def surviving_parents(rule: LabelingHeuristic) -> Set[LabelingHeuristic]:
            stack = [rule]
            while stack:
                node = stack[-1]
                if node in memo:
                    stack.pop()
                    continue
                pending = [
                    parent
                    for parent in self._parents[node]
                    if parent in removed and parent not in memo
                ]
                if pending:
                    stack.extend(pending)
                    continue
                out: Set[LabelingHeuristic] = set()
                for parent in self._parents[node]:
                    if parent in removed:
                        out |= memo[parent]
                    else:
                        out.add(parent)
                memo[node] = out
                stack.pop()
            return memo[rule]

        new_edges: List[Tuple[LabelingHeuristic, LabelingHeuristic]] = []
        affected: Set[LabelingHeuristic] = set()
        for rule in removable:
            affected |= self._parents[rule]
            affected |= self._children[rule]
            survivors = [
                child for child in self._children[rule] if child not in removed
            ]
            if not survivors:
                continue
            for parent in surviving_parents(rule):
                for child in survivors:
                    new_edges.append((parent, child))
        for rule in removable:
            del self._nodes[rule]
            del self._parents[rule]
            del self._children[rule]
            del self._sort_keys[rule]
        for rule in affected - removed:
            self._parents[rule] -= removed
            self._children[rule] -= removed
        for parent, child in new_edges:
            self._children[parent].add(child)
            self._parents[child].add(parent)
        self._table = None

    # ------------------------------------------------------- state protocol
    def to_state(self) -> Dict[str, object]:
        """JSON-able snapshot: nodes in insertion order plus edge index pairs.

        Edges are serialized explicitly (rather than re-derived on load) so a
        restored hierarchy is *identical* to the live one — including edges
        discovered incrementally — which the checkpoint/resume replay
        guarantee depends on.
        """
        rules = list(self._nodes)
        positions = {rule: position for position, rule in enumerate(rules)}
        edges = sorted(
            (positions[parent], positions[child])
            for parent, children in self._children.items()
            for child in children
        )
        return {
            "nodes": [rule.ref() for rule in rules],
            "edges": [[parent, child] for parent, child in edges],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], resolve) -> "RuleHierarchy":
        """Rebuild a hierarchy from :meth:`to_state` output.

        Args:
            state: The serialized snapshot.
            resolve: Callable mapping a rule ref to a
                :class:`LabelingHeuristic` with coverage attached.
        """
        hierarchy = cls()
        rules = [resolve(ref) for ref in state.get("nodes", [])]
        for rule in rules:
            hierarchy.add(rule)
        for parent_pos, child_pos in state.get("edges", []):
            hierarchy.add_edge(rules[parent_pos], rules[child_pos])
        return hierarchy

    # ------------------------------------------------------------ construction
    @classmethod
    def from_rules(
        cls,
        rules: Iterable[LabelingHeuristic],
        link_by_grammar: bool = True,
        max_link_candidates: Optional[int] = None,
    ) -> "RuleHierarchy":
        """Build a hierarchy from candidate rules, discovering subset edges.

        Edges are added between rules of the same grammar when one expression
        is an ancestor of the other under that grammar *and* their coverage
        sets are consistent with the subset direction. Only "closest" ancestors
        get a direct edge (transitive edges are skipped when an intermediate
        rule exists).

        Args:
            rules: Candidate rules with coverage computed.
            link_by_grammar: Restrict edges to same-grammar pairs (always true
                for the built-in grammars; cross-grammar subset edges are
                rarely meaningful).
            max_link_candidates: Safety cap on the number of rules considered
                for quadratic edge discovery; beyond it only coverage-subset
                edges between rules sharing coverage are added.
        """
        hierarchy = cls()
        rule_list = [r for r in rules]
        for rule in rule_list:
            hierarchy.add(rule)

        if max_link_candidates is not None and len(rule_list) > max_link_candidates:
            rule_list = sorted(
                rule_list, key=lambda r: -r.coverage_size
            )[:max_link_candidates]

        # Sort by descending coverage so parents are processed before children.
        ordered = sorted(rule_list, key=lambda r: (-r.coverage_size, r.render()))
        for child_pos, child in enumerate(ordered):
            child_view = child.coverage_view
            child_cov = None if child_view is not None else set(child.coverage)
            for parent in ordered[:child_pos]:
                if link_by_grammar and parent.grammar.name != child.grammar.name:
                    continue
                if parent.coverage_size < child.coverage_size:
                    continue
                if child_view is not None:
                    contained = (
                        child_view.intersect_count(parent.coverage) == child_view.count
                    )
                else:
                    contained = child_cov.issubset(parent.coverage)
                if not contained:
                    # Structural containment without coverage containment can
                    # happen for gapped rules; require the structural check.
                    if not parent.grammar.is_ancestor(
                        parent.expression, child.expression
                    ):
                        continue
                elif not parent.grammar.is_ancestor(
                    parent.expression, child.expression
                ):
                    continue
                hierarchy.add_edge(parent, child)
        hierarchy._remove_transitive_edges()
        return hierarchy

    def _remove_transitive_edges(self) -> None:
        """Keep only direct edges: drop parent->child if a path via another node exists.

        The transitive reduction of a DAG is unique and removing a transitive
        edge never changes reachability, so descendant sets are computed
        **once** from the node table (memoized per node) instead of being
        re-derived from the mutating graph inside the edge loop.
        """
        table = self.node_table()
        rules = self._table_rules
        positions = self._table_positions
        desc_cache: Dict[int, Set[int]] = {}

        def descendant_positions(position: int) -> Set[int]:
            cached = desc_cache.get(position)
            if cached is None:
                cached = set(table.descendants_of(position).tolist())
                desc_cache[position] = cached
            return cached

        mutated = False
        for parent in rules:
            children = self._children.get(parent, set())
            if len(children) < 2:
                continue
            child_positions = [positions[child] for child in children]
            reachable: Set[int] = set()
            for position in child_positions:
                reachable |= descendant_positions(position)
            for position in child_positions:
                if position in reachable:
                    child = rules[position]
                    self._children[parent].discard(child)
                    self._parents[child].discard(parent)
                    mutated = True
        if mutated:
            self._table = None

    def __repr__(self) -> str:
        edges = sum(len(kids) for kids in self._children.values())
        return f"RuleHierarchy(nodes={len(self._nodes)}, edges={edges})"
