"""The candidate-heuristic hierarchy (Section 3.2).

The hierarchy ``H`` organizes a manageable set of candidate heuristics into a
DAG whose edges capture subset/superset coverage relations: parents are more
general (larger coverage), children more specific. Key operations needed by
the traversal strategies:

* ``parents(rule)`` / ``children(rule)`` in O(1) — LocalSearch expands these
  neighbourhoods after each oracle answer,
* membership and removal — UniversalSearch removes queried rules,
* cleanup — drop rules that add no new positives relative to already-accepted
  coverage (Section 3.2, "Hierarchical Arrangement and edge discovery"),
* on-the-fly growth — LocalSearch skips pre-generation and expands lazily.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from ..errors import TraversalError
from ..rules.heuristic import LabelingHeuristic


class RuleHierarchy:
    """A DAG of candidate labeling heuristics ordered by generality."""

    def __init__(self) -> None:
        self._nodes: Dict[LabelingHeuristic, None] = {}
        self._parents: Dict[LabelingHeuristic, Set[LabelingHeuristic]] = {}
        self._children: Dict[LabelingHeuristic, Set[LabelingHeuristic]] = {}

    # --------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, rule: LabelingHeuristic) -> bool:
        return rule in self._nodes

    def __iter__(self) -> Iterator[LabelingHeuristic]:
        return iter(self._nodes)

    # ------------------------------------------------------------------ edits
    def add(self, rule: LabelingHeuristic) -> bool:
        """Add a candidate rule (no edges). Returns False if already present."""
        if rule in self._nodes:
            return False
        if rule.coverage_ids is None:
            raise TraversalError("hierarchy rules must have coverage computed")
        self._nodes[rule] = None
        self._parents[rule] = set()
        self._children[rule] = set()
        return True

    def add_edge(self, parent: LabelingHeuristic, child: LabelingHeuristic) -> None:
        """Record that ``child`` specializes ``parent``."""
        if parent not in self._nodes or child not in self._nodes:
            raise TraversalError("both endpoints must be in the hierarchy")
        if parent == child:
            return
        self._children[parent].add(child)
        self._parents[child].add(parent)

    def remove(self, rule: LabelingHeuristic) -> None:
        """Remove ``rule``, reconnecting its children to its parents."""
        if rule not in self._nodes:
            return
        parents = self._parents.pop(rule, set())
        children = self._children.pop(rule, set())
        del self._nodes[rule]
        for parent in parents:
            self._children[parent].discard(rule)
        for child in children:
            self._parents[child].discard(rule)
        for parent in parents:
            for child in children:
                self.add_edge(parent, child)

    # -------------------------------------------------------------- accessors
    def rules(self) -> List[LabelingHeuristic]:
        """All candidate rules currently in the hierarchy."""
        return list(self._nodes)

    def parents(self, rule: LabelingHeuristic) -> List[LabelingHeuristic]:
        """Direct generalizations of ``rule`` within the hierarchy."""
        return list(self._parents.get(rule, set()))

    def children(self, rule: LabelingHeuristic) -> List[LabelingHeuristic]:
        """Direct specializations of ``rule`` within the hierarchy."""
        return list(self._children.get(rule, set()))

    def roots(self) -> List[LabelingHeuristic]:
        """Rules with no parents (the most general candidates)."""
        return [rule for rule in self._nodes if not self._parents[rule]]

    def leaves(self) -> List[LabelingHeuristic]:
        """Rules with no children (the most specific candidates)."""
        return [rule for rule in self._nodes if not self._children[rule]]

    # ---------------------------------------------------------------- queries
    def descendants(self, rule: LabelingHeuristic) -> Set[LabelingHeuristic]:
        """All rules reachable downward from ``rule`` (excluding itself)."""
        result: Set[LabelingHeuristic] = set()
        frontier = list(self._children.get(rule, set()))
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._children.get(node, set()))
        return result

    def ancestors(self, rule: LabelingHeuristic) -> Set[LabelingHeuristic]:
        """All rules reachable upward from ``rule`` (excluding itself)."""
        result: Set[LabelingHeuristic] = set()
        frontier = list(self._parents.get(rule, set()))
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._parents.get(node, set()))
        return result

    def is_consistent(self) -> bool:
        """True if every edge goes from larger to smaller-or-equal coverage."""
        for parent, children in self._children.items():
            for child in children:
                if child.coverage_size > parent.coverage_size:
                    return False
        return True

    # ---------------------------------------------------------------- cleanup
    def cleanup(self, covered_ids) -> int:
        """Drop rules whose coverage adds nothing beyond ``covered_ids``.

        Accepts a set of sentence ids or a boolean coverage mask. Returns the
        number of removed rules. Mirrors the paper's cleanup step: the
        traversal will never query a heuristic that cannot add new positives.
        Rules backed by interned coverage views are tested with one vectorized
        mask probe instead of materializing a set difference.
        """
        if isinstance(covered_ids, np.ndarray) and covered_ids.dtype == np.bool_:
            mask: Optional[np.ndarray] = covered_ids
            covered_set: Set[int] = set()
        else:
            mask = None
            covered_set = set(covered_ids)

        def has_gain(rule: LabelingHeuristic) -> bool:
            view = rule.coverage_view
            if view is not None:
                if mask is not None:
                    return bool(view.new_ids_given(mask).size)
                return view.count > view.intersect_count(covered_set)
            if mask is not None:
                return any(
                    sid >= mask.size or not mask[sid] for sid in rule.coverage
                )
            return bool(set(rule.coverage) - covered_set)

        removable = [rule for rule in self._nodes if not has_gain(rule)]
        for rule in removable:
            self.remove(rule)
        return len(removable)

    # ------------------------------------------------------- state protocol
    def to_state(self) -> Dict[str, object]:
        """JSON-able snapshot: nodes in insertion order plus edge index pairs.

        Edges are serialized explicitly (rather than re-derived on load) so a
        restored hierarchy is *identical* to the live one — including edges
        discovered incrementally — which the checkpoint/resume replay
        guarantee depends on.
        """
        rules = list(self._nodes)
        positions = {rule: position for position, rule in enumerate(rules)}
        edges = sorted(
            (positions[parent], positions[child])
            for parent, children in self._children.items()
            for child in children
        )
        return {
            "nodes": [rule.ref() for rule in rules],
            "edges": [[parent, child] for parent, child in edges],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], resolve) -> "RuleHierarchy":
        """Rebuild a hierarchy from :meth:`to_state` output.

        Args:
            state: The serialized snapshot.
            resolve: Callable mapping a rule ref to a
                :class:`LabelingHeuristic` with coverage attached.
        """
        hierarchy = cls()
        rules = [resolve(ref) for ref in state.get("nodes", [])]
        for rule in rules:
            hierarchy.add(rule)
        for parent_pos, child_pos in state.get("edges", []):
            hierarchy.add_edge(rules[parent_pos], rules[child_pos])
        return hierarchy

    # ------------------------------------------------------------ construction
    @classmethod
    def from_rules(
        cls,
        rules: Iterable[LabelingHeuristic],
        link_by_grammar: bool = True,
        max_link_candidates: Optional[int] = None,
    ) -> "RuleHierarchy":
        """Build a hierarchy from candidate rules, discovering subset edges.

        Edges are added between rules of the same grammar when one expression
        is an ancestor of the other under that grammar *and* their coverage
        sets are consistent with the subset direction. Only "closest" ancestors
        get a direct edge (transitive edges are skipped when an intermediate
        rule exists).

        Args:
            rules: Candidate rules with coverage computed.
            link_by_grammar: Restrict edges to same-grammar pairs (always true
                for the built-in grammars; cross-grammar subset edges are
                rarely meaningful).
            max_link_candidates: Safety cap on the number of rules considered
                for quadratic edge discovery; beyond it only coverage-subset
                edges between rules sharing coverage are added.
        """
        hierarchy = cls()
        rule_list = [r for r in rules]
        for rule in rule_list:
            hierarchy.add(rule)

        if max_link_candidates is not None and len(rule_list) > max_link_candidates:
            rule_list = sorted(
                rule_list, key=lambda r: -r.coverage_size
            )[:max_link_candidates]

        # Sort by descending coverage so parents are processed before children.
        ordered = sorted(rule_list, key=lambda r: (-r.coverage_size, r.render()))
        for child_pos, child in enumerate(ordered):
            child_view = child.coverage_view
            child_cov = None if child_view is not None else set(child.coverage)
            for parent in ordered[:child_pos]:
                if link_by_grammar and parent.grammar.name != child.grammar.name:
                    continue
                if parent.coverage_size < child.coverage_size:
                    continue
                if child_view is not None:
                    contained = (
                        child_view.intersect_count(parent.coverage) == child_view.count
                    )
                else:
                    contained = child_cov.issubset(parent.coverage)
                if not contained:
                    # Structural containment without coverage containment can
                    # happen for gapped rules; require the structural check.
                    if not parent.grammar.is_ancestor(
                        parent.expression, child.expression
                    ):
                        continue
                elif not parent.grammar.is_ancestor(
                    parent.expression, child.expression
                ):
                    continue
                hierarchy.add_edge(parent, child)
        hierarchy._remove_transitive_edges()
        return hierarchy

    def _remove_transitive_edges(self) -> None:
        """Keep only direct edges: drop parent->child if a path via another node exists."""
        for parent in list(self._nodes):
            children = list(self._children.get(parent, set()))
            for child in children:
                intermediate_exists = any(
                    other != child
                    and other != parent
                    and child in self.descendants(other)
                    for other in self._children.get(parent, set())
                )
                if intermediate_exists:
                    self._children[parent].discard(child)
                    self._parents[child].discard(parent)

    def __repr__(self) -> str:
        edges = sum(len(kids) for kids in self._children.values())
        return f"RuleHierarchy(nodes={len(self._nodes)}, edges={edges})"
