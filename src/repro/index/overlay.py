"""Copy-on-write coverage overlay: tenant-local interns over a shared store.

The multi-tenant split of the Darwin loop is per-tenant *mutable* state
(rules, hierarchy, classifier weights, traversal pools) over corpus-wide
*immutable* state (the index and its interned coverage columns). This module
provides the coverage half of that split: :class:`OverlayCoverageStore` wraps
a shared, read-only base :class:`~repro.index.coverage.CoverageStore` (in a
:class:`~repro.serving.TenantPool`, one arena-backed store mapped by every
tenant) and gives each tenant its own append-only side store.

Id-space partitioning
---------------------

Slots are partitioned at attach time: the base's ``num_interned`` slots keep
ids ``0 .. base_count-1``, and tenant-local interns are numbered from
``base_count`` upward in the tenant's own slot space. Lookups probe the base
first — a coverage already interned in the shared columns resolves to the
*shared* view (same object every tenant sees, zero copies) — and only
genuinely new coverages land in the tenant's side store. The shared
bitsets/CSR columns are therefore never copied, and nothing a tenant interns
can perturb another tenant's views or the shared columns (enforced by the
read-only arena attach underneath, and property-tested in
``tests/test_serving.py``).

Checkpoints
-----------

:meth:`OverlayCoverageStore.to_state` serializes the overlay as a *reference*
to the base (for an arena base, path + content digest — no column copy) plus
the tenant-local columns inline, so a tenant checkpoint stays O(what the
tenant itself added). :meth:`CoverageStore.from_state` dispatches
``backend == "overlay"`` states back here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .coverage import CoverageStore, CoverageView, IdsLike, _as_sorted_ids


class OverlayCoverageStore(CoverageStore):
    """A tenant-local coverage store layered over a shared read-only base.

    Behaves exactly like a :class:`CoverageStore` to callers (interning,
    masks, unions, the state protocol), but :meth:`intern` resolves against
    the shared base first and appends novel coverages to a tenant-local heap
    side store. The base is never written.

    Args:
        base: The shared store (typically arena-backed and frozen read-only).
            Must not itself be an overlay — one level of layering keeps the
            slot arithmetic trivially correct.
        universe_size: Optional larger universe for the tenant (the base's
            universe is the floor).
    """

    def __init__(self, base: CoverageStore, universe_size: int = 0) -> None:
        if isinstance(base, OverlayCoverageStore):
            raise ConfigurationError(
                "overlay stores do not stack: attach every tenant directly "
                "to the shared base store"
            )
        self._base = base
        self._base_count = base.num_interned
        # Intern-routing counters (observability): how many intern() calls
        # resolved against the shared base vs. an existing local view vs.
        # appended a new local view. Plain ints — the coordinator drives each
        # tenant single-threaded, and the pool collector only reads them.
        # Initialized before super().__init__, which interns the empty view.
        self._shared_routed = 0
        self._local_routed = 0
        self._local_interned = 0
        super().__init__(universe_size=max(base.universe_size, int(universe_size)))
        self.backend = "overlay"

    # ----------------------------------------------------------------- layout
    @property
    def base(self) -> CoverageStore:
        """The shared base store (read-only from this overlay's view)."""
        return self._base

    @property
    def base_count(self) -> int:
        """Shared slots ``0 .. base_count-1``; local slots start here."""
        return self._base_count

    @property
    def num_interned(self) -> int:
        """Shared plus tenant-local distinct coverages."""
        return self._base_count + len(self._views)

    @property
    def num_overlay_interned(self) -> int:
        """Distinct coverages this tenant added on top of the base."""
        return len(self._views)

    @property
    def overlay_bytes(self) -> int:
        """Heap bytes held by the tenant-local id arrays."""
        return sum(view.ids.nbytes for view in self._views)

    @property
    def bytes_interned(self) -> int:
        """Shared column bytes (counted once, in the base) plus local bytes."""
        return self._base.bytes_interned + self.overlay_bytes

    @property
    def resident_coverage_bytes(self) -> int:
        """This tenant's *marginal* heap residency: local arrays + bitsets.

        Overlay stores have no bitset byte budget, so dense local views cache
        their packed bitset per view (the memory-backend path) — those bytes
        are counted here too. The shared base's residency is deliberately
        excluded: it exists once per pool, not once per tenant, and is
        accounted by :meth:`repro.serving.TenantPool.memory_stats`.
        """
        per_view_bits = sum(
            view._bits.nbytes for view in self._views if view._bits is not None
        )
        return self.overlay_bytes + self._bitset_cache_bytes + per_view_bits

    def interned_views(self) -> list:
        """Base views (slots ``< base_count``) then local views, slot order."""
        return self._base.interned_views()[: self._base_count] + list(self._views)

    def overlay_views(self) -> List[CoverageView]:
        """The tenant-local views only, in local interning order."""
        return list(self._views)

    # -------------------------------------------------------------- interning
    def find(self, ids: IdsLike) -> Optional[CoverageView]:
        """The shared or local view for ``ids`` if interned, else None."""
        if isinstance(ids, CoverageView) and ids.store is self:
            return ids
        array = _as_sorted_ids(ids)
        shared = self._resolve_shared(array)
        if shared is not None:
            return shared
        position = self._by_key.get(self._key_of(array))
        return self._views[position] if position is not None else None

    def _resolve_shared(self, array: np.ndarray) -> Optional[CoverageView]:
        """The base's view for ``array`` when it predates the attach point."""
        shared = self._base.find(array)
        if shared is None:
            return None
        if shared.slot is not None and shared.slot >= self._base_count:
            # Interned into the base after this overlay attached — outside
            # our frozen id space, so treat it as unknown and keep isolation.
            return None
        return shared

    def intern(self, ids: IdsLike) -> CoverageView:
        """The unique view for ``ids``: shared when the base has it, else a
        tenant-local view with a slot in the overlay id range."""
        if isinstance(ids, CoverageView):
            if ids.store is self:
                return ids
            if ids.store is self._base and (
                ids.slot is None or ids.slot < self._base_count
            ):
                self._shared_routed += 1
                return ids
        array = _as_sorted_ids(ids)
        shared = self._resolve_shared(array)
        if shared is not None:
            self._shared_routed += 1
            return shared
        key = self._key_of(array)
        position = self._by_key.get(key)
        if position is not None:
            self._local_routed += 1
            return self._views[position]
        self._local_interned += 1
        if array.size:
            self.ensure_universe(int(array[-1]) + 1)
        view = CoverageView(
            array, store=self, slot=self._base_count + len(self._views)
        )
        self._by_key[key] = len(self._views)
        self._views.append(view)
        return view

    def intern_many(self, ids_list: Sequence[IdsLike]) -> List[CoverageView]:
        """Intern several coverages (heap side store — no bulk-write concern)."""
        return [self.intern(ids) for ids in ids_list]

    # ------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        """No-op: the base is read-only and the overlay lives on the heap."""

    def close(self) -> None:
        """Drop the tenant-local bitset caches (budgeted and per-view). The
        shared base is untouched — its lifetime belongs to the pool, not to
        any one tenant."""
        self._bitset_cache.clear()
        self._bitset_cache_bytes = 0
        for view in self._views:
            view._bits = None
            view._bits_universe = -1

    # -------------------------------------------------------- state protocol
    def to_state(self, bundle, prefix: str = "coverage/") -> Dict[str, object]:
        """Serialize as a base *reference* plus inline tenant-local columns.

        For an arena base the reference is path + content digest (see
        :meth:`CoverageStore.to_state`), so a tenant checkpoint never copies
        the shared columns; a memory base is inlined as usual under the
        ``base`` key. Local slots keep their order, so restored overlays are
        slot-for-slot identical.
        """
        views = self._views
        offsets = np.zeros(len(views) + 1, dtype=np.int64)
        for position, view in enumerate(views):
            offsets[position + 1] = offsets[position] + view.ids.size
        values = (
            np.concatenate([view.ids for view in views])
            if views and int(offsets[-1])
            else np.empty(0, dtype=np.int32)
        )
        return {
            "backend": "overlay",
            "universe_size": int(self._universe),
            "num_interned": self.num_interned,
            "base_count": self._base_count,
            "base": self._base.to_state(bundle, prefix + "base/"),
            "values": bundle.put(
                prefix + "values", values.astype(np.int32, copy=False)
            ),
            "offsets": bundle.put(prefix + "offsets", offsets),
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], bundle, arena_config=None
    ) -> "OverlayCoverageStore":
        """Rebuild an overlay from :meth:`to_state` output.

        The base is reattached first (digest-verified for arena references);
        a base whose slot count no longer matches the recorded partition
        point raises :class:`~repro.errors.ConfigurationError`, because every
        node/slot reference in the checkpoint would otherwise be silently
        misaligned.
        """
        recorded_backend = state.get("backend")
        if recorded_backend is not None and recorded_backend != "overlay":
            raise ConfigurationError(
                f"state records backend {recorded_backend!r}, not an "
                f"overlay coverage store"
            )
        base_state = state.get("base")
        if not isinstance(base_state, dict):
            raise ConfigurationError(
                "overlay coverage state records no base store"
            )
        base = CoverageStore.from_state(
            base_state, bundle, arena_config=arena_config
        )
        return cls.from_state_over(base, state, bundle)

    @classmethod
    def from_state_over(
        cls, base: CoverageStore, state: Dict[str, object], bundle
    ) -> "OverlayCoverageStore":
        """Rebuild an overlay from :meth:`to_state` output over an
        **already-attached** base store.

        The tenant-migration path: a fleet worker adopting a checkpointed
        tenant already holds the shared base (same arena every worker maps),
        so the checkpoint's base *reference* is validated against it — slot
        partition point, and arena content digest when both sides record one
        — instead of reattaching a second copy from disk. Local columns are
        re-interned in slot order, so every coverage id the checkpointed
        Darwin state references stays aligned.
        """
        recorded_backend = state.get("backend")
        if recorded_backend is not None and recorded_backend != "overlay":
            raise ConfigurationError(
                f"state records backend {recorded_backend!r}, not an "
                f"overlay coverage store"
            )
        recorded_base = state.get("base_count")
        if recorded_base is not None and int(recorded_base) != base.num_interned:
            raise ConfigurationError(
                f"overlay state partitions the id space at base_count="
                f"{recorded_base} but the supplied base holds "
                f"{base.num_interned} slots"
            )
        base_state = state.get("base")
        if isinstance(base_state, dict) and base.arena is not None:
            reference = base_state.get("arena")
            if isinstance(reference, dict):
                digest = reference.get("digest")
                if digest is not None and digest != base.arena.digest:
                    raise ConfigurationError(
                        f"overlay checkpoint references arena digest "
                        f"{digest} but the attached base arena has "
                        f"{base.arena.digest}; this tenant belongs to a "
                        f"different substrate"
                    )
        store = cls(base, universe_size=int(state.get("universe_size", 0)))
        values = np.asarray(bundle.get(state["values"]), dtype=np.int32)
        offsets = np.asarray(bundle.get(state["offsets"]), dtype=np.int64)
        if (
            offsets.size == 0
            or int(offsets[0]) != 0
            or int(offsets[-1]) != values.size
            or (offsets.size > 1 and bool(np.any(np.diff(offsets) < 0)))
        ):
            raise ConfigurationError(
                "overlay coverage state offsets column is inconsistent with "
                "its values column"
            )
        for position in range(offsets.size - 1):
            store.intern(values[offsets[position]:offsets[position + 1]])
        recorded = state.get("num_interned")
        if recorded is not None and int(recorded) != store.num_interned:
            raise ConfigurationError(
                f"overlay coverage state records num_interned={recorded} but "
                f"the restored store holds {store.num_interned}"
            )
        return store

    def stats(self) -> Dict[str, float]:
        """Summary statistics: overlay-marginal plus the base's, prefixed."""
        stats = {
            "universe_size": float(self._universe),
            "num_interned": float(self.num_interned),
            "num_overlay_interned": float(self.num_overlay_interned),
            "overlay_bytes": float(self.overlay_bytes),
            "resident_coverage_bytes": float(self.resident_coverage_bytes),
            "shared_routed": float(self._shared_routed),
            "local_routed": float(self._local_routed),
            "local_interned": float(self._local_interned),
        }
        stats.update(
            {f"base_{key}": value for key, value in self._base.stats().items()}
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"OverlayCoverageStore(base_slots={self._base_count}, "
            f"overlay_slots={self.num_overlay_interned}, "
            f"universe={self._universe})"
        )
