"""Interval-encoded node tables (the XPath-accelerator layout).

Both the corpus index and the rule hierarchy are DAGs whose hot queries used
to be answered by chasing Python dict-of-set adjacency per node: ranking by
overlap re-sorted keys with a Python comparator, ancestor/descendant tests
walked frontiers of hash sets, and cleanup probed each rule individually.
This module packs every node into **contiguous ndarray columns** and numbers
it with a pre/post-order interval encoding, the classic XPath-accelerator
trick: in a forest, ``v`` is an ancestor of ``w`` exactly when

    pre[v] < pre[w]  and  post[w] <= post[v]

— two integer comparisons — and the descendants of ``v`` are the contiguous
window ``order_by_pre[pre[v]+1 : post[v]+1]``, a slice instead of a
traversal. General DAGs (a node may have several generalization parents) keep
a spanning-forest encoding plus CSR adjacency; reachability then runs as a
batched frontier sweep over the CSR arrays — still no per-node Python objects
in the loop.

Columns
-------

``pre``/``post``
    Spanning-forest interval encoding. ``pre`` is the DFS entry number
    (0-based, dense); ``post[v]`` is the largest ``pre`` in ``v``'s spanning
    subtree, so subtree windows are inclusive slices of pre-order.
``depth``
    Node depth (spanning-forest depth, or a caller-supplied column such as
    the index's derivation depth).
``count``
    Coverage count ``|C_v|``.
``store_slot``
    Slot of the node's interned coverage in its ``CoverageStore`` (-1 when
    the coverage is not interned).
``rank``
    The stable lexicographic tie-break rank: position of the node under
    ``(count desc, repr asc)``. Ranking by ``(overlap desc, rank asc)``
    therefore reproduces the legacy ``(overlap desc, count desc, repr asc)``
    Python comparator with one vectorized composite key.

The table is immutable once built; holders rebuild (or incrementally
renumber) it when the underlying graph changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def lexicographic_ranks(counts: np.ndarray, reprs: Sequence[str]) -> np.ndarray:
    """Rank of each node under ``(count desc, repr asc)`` — no Python comparator.

    ``rank[i] == 0`` for the node with the largest count (ties broken by the
    smaller repr string). Computed with one ``np.lexsort`` over the repr
    codes and negated counts, so seal-time cost is a vectorized sort instead
    of a Python ``sorted`` with a tuple lambda.
    """
    n = int(np.asarray(counts).size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    repr_array = np.asarray(reprs, dtype=object)
    # np.lexsort cannot compare object arrays; factorize reprs to int codes
    # first (np.unique sorts lexicographically, matching str comparison).
    _, repr_codes = np.unique(repr_array.astype(str), return_inverse=True)
    order = np.lexsort((repr_codes, -np.asarray(counts, dtype=np.int64)))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    return ranks


def _csr_from_edges(
    num_nodes: int, heads: np.ndarray, tails: np.ndarray, order_key: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR adjacency ``(starts, targets)`` with each row sorted by ``order_key``.

    ``heads[e] -> tails[e]`` are the edges; row ``i`` of the result is
    ``targets[starts[i]:starts[i+1]]``, listing ``i``'s neighbours in
    ascending ``order_key`` (the stable node rank), so iteration order is
    deterministic across Python hash seeds.
    """
    if not heads.size:
        return (
            np.zeros(num_nodes + 1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
        )
    # Sort edges by (head, rank-of-tail): one vectorized lexsort.
    edge_order = np.lexsort((order_key[tails], heads))
    heads = heads[edge_order]
    tails = tails[edge_order]
    starts = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(starts, heads + 1, 1)
    np.cumsum(starts, out=starts)
    return starts, tails.astype(np.int32, copy=False)


class NodeTable:
    """Contiguous interval-encoded columns over one DAG's nodes.

    Build with :meth:`build` from edge arrays; query with the windowed
    kernels. All arrays are read-only views owned by the table.
    """

    __slots__ = (
        "pre",
        "post",
        "depth",
        "count",
        "store_slot",
        "rank",
        "order_by_pre",
        "parent_starts",
        "parent_ids",
        "child_starts",
        "child_ids",
        "is_forest",
    )

    def __init__(
        self,
        pre: np.ndarray,
        post: np.ndarray,
        depth: np.ndarray,
        count: np.ndarray,
        store_slot: np.ndarray,
        rank: np.ndarray,
        order_by_pre: np.ndarray,
        parent_starts: np.ndarray,
        parent_ids: np.ndarray,
        child_starts: np.ndarray,
        child_ids: np.ndarray,
        is_forest: bool,
    ) -> None:
        self.pre = pre
        self.post = post
        self.depth = depth
        self.count = count
        self.store_slot = store_slot
        self.rank = rank
        self.order_by_pre = order_by_pre
        self.parent_starts = parent_starts
        self.parent_ids = parent_ids
        self.child_starts = child_starts
        self.child_ids = child_ids
        self.is_forest = is_forest

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        num_nodes: int,
        parent_edges: Sequence[Tuple[int, int]],
        counts: np.ndarray,
        ranks: np.ndarray,
        store_slots: Optional[np.ndarray] = None,
        depths: Optional[np.ndarray] = None,
    ) -> "NodeTable":
        """Number ``num_nodes`` nodes from ``(parent, child)`` edge pairs.

        The spanning forest roots (no parents) are visited in rank order,
        children in rank order, and each node is claimed by the first DFS
        arrival — so the encoding is deterministic given the graph and ranks.

        Args:
            num_nodes: Number of nodes (indices ``0 .. num_nodes-1``).
            parent_edges: ``(parent, child)`` index pairs (duplicates ignored).
            counts: Per-node coverage counts.
            ranks: Per-node stable rank (see :func:`lexicographic_ranks`).
            store_slots: Per-node coverage-store slots (-1 = not interned).
            depths: Optional depth column; defaults to spanning-forest depth.
        """
        counts = np.asarray(counts, dtype=np.int64)
        ranks = np.asarray(ranks, dtype=np.int64)
        if store_slots is None:
            store_slots = np.full(num_nodes, -1, dtype=np.int64)
        else:
            store_slots = np.asarray(store_slots, dtype=np.int64)
        if parent_edges:
            edges = np.asarray(parent_edges, dtype=np.int64)
            edges = np.unique(edges, axis=0)
            heads, tails = edges[:, 0], edges[:, 1]
        else:
            heads = tails = np.empty(0, dtype=np.int64)
        child_starts, child_ids = _csr_from_edges(num_nodes, heads, tails, ranks)
        parent_starts, parent_ids = _csr_from_edges(num_nodes, tails, heads, ranks)
        indegree = np.diff(parent_starts)
        is_forest = bool(num_nodes == 0 or int(indegree.max(initial=0)) <= 1)

        pre = np.full(num_nodes, -1, dtype=np.int64)
        post = np.full(num_nodes, -1, dtype=np.int64)
        forest_depth = np.zeros(num_nodes, dtype=np.int64)
        order_by_pre = np.empty(num_nodes, dtype=np.int64)
        roots = np.flatnonzero(indegree == 0)
        roots = roots[np.argsort(ranks[roots], kind="stable")]
        counter = 0
        # Iterative DFS; each (node, child cursor) frame revisits to stamp
        # post once the subtree is exhausted. Nodes reached twice (DAG) are
        # claimed by the first arrival only.
        for root in roots.tolist():
            if pre[root] >= 0:
                continue
            stack: List[Tuple[int, int]] = [(root, int(child_starts[root]))]
            pre[root] = counter
            order_by_pre[counter] = root
            counter += 1
            while stack:
                node, cursor = stack[-1]
                end = int(child_starts[node + 1])
                advanced = False
                while cursor < end:
                    child = int(child_ids[cursor])
                    cursor += 1
                    if pre[child] < 0:
                        stack[-1] = (node, cursor)
                        pre[child] = counter
                        order_by_pre[counter] = child
                        forest_depth[child] = forest_depth[node] + 1
                        counter += 1
                        stack.append((child, int(child_starts[child])))
                        advanced = True
                        break
                if not advanced:
                    post[node] = counter - 1
                    stack.pop()
        # A cyclic input (should not happen for coverage DAGs) would leave
        # nodes unnumbered; give them degenerate singleton intervals so the
        # kernels stay total functions.
        unnumbered = np.flatnonzero(pre < 0)
        for node in unnumbered.tolist():
            pre[node] = counter
            post[node] = counter
            order_by_pre[counter] = node
            counter += 1
        depth = (
            np.asarray(depths, dtype=np.int64)
            if depths is not None
            else forest_depth
        )
        table = cls(
            pre=pre,
            post=post,
            depth=depth,
            count=counts,
            store_slot=store_slots,
            rank=ranks,
            order_by_pre=order_by_pre,
            parent_starts=parent_starts,
            parent_ids=parent_ids,
            child_starts=child_starts,
            child_ids=child_ids,
            is_forest=is_forest,
        )
        for column in (
            table.pre, table.post, table.depth, table.count,
            table.store_slot, table.rank, table.order_by_pre,
            table.parent_starts, table.parent_ids,
            table.child_starts, table.child_ids,
        ):
            column.setflags(write=False)
        return table

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return int(self.pre.size)

    def parents_of(self, node: int) -> np.ndarray:
        """Direct parents of ``node``, in rank order (a CSR window slice)."""
        return self.parent_ids[
            self.parent_starts[node]:self.parent_starts[node + 1]
        ]

    def children_of(self, node: int) -> np.ndarray:
        """Direct children of ``node``, in rank order (a CSR window slice)."""
        return self.child_ids[
            self.child_starts[node]:self.child_starts[node + 1]
        ]

    def roots(self) -> np.ndarray:
        """Nodes with no parents, in rank order."""
        nodes = np.flatnonzero(np.diff(self.parent_starts) == 0)
        return nodes[np.argsort(self.rank[nodes], kind="stable")]

    def leaves(self) -> np.ndarray:
        """Nodes with no children, in rank order."""
        nodes = np.flatnonzero(np.diff(self.child_starts) == 0)
        return nodes[np.argsort(self.rank[nodes], kind="stable")]

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """Two-integer-comparison interval test (exact on forests).

        On non-forest DAGs this tests reachability along the spanning forest
        only; use :meth:`ancestors_of` for full DAG reachability.
        """
        return bool(
            self.pre[ancestor] < self.pre[node]
            and self.post[node] <= self.post[ancestor]
        )

    def descendant_window(self, node: int) -> np.ndarray:
        """Spanning-subtree descendants of ``node`` as one pre-order slice."""
        return self.order_by_pre[self.pre[node] + 1:self.post[node] + 1]

    def descendants_of(self, node: int) -> np.ndarray:
        """All nodes reachable downward from ``node`` (excluding itself).

        Forests answer with the interval window slice; DAGs complete the
        window with a batched CSR frontier sweep (the window is still the
        seed, so the sweep only chases cross edges).
        """
        if self.is_forest:
            return self.descendant_window(node)
        return self._closure(node, self.child_starts, self.child_ids)

    def ancestors_of(self, node: int) -> np.ndarray:
        """All nodes reachable upward from ``node`` (excluding itself).

        Forests walk the unique parent chain via the interval columns — the
        ancestors of ``v`` are exactly the nodes whose interval contains
        ``pre[v]``, found with two vectorized comparisons over the columns;
        DAGs run the CSR sweep upward.
        """
        if self.is_forest:
            position = self.pre[node]
            mask = (self.pre < position) & (self.post >= position)
            return np.flatnonzero(mask)
        return self._closure(node, self.parent_starts, self.parent_ids)

    def _closure(
        self, node: int, starts: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Batched BFS closure over one CSR direction (DAG fallback).

        Each round gathers *all* frontier adjacency windows with one
        ``repeat``/``arange`` expansion — the loop runs once per BFS level,
        not once per node.
        """
        seen = np.zeros(len(self), dtype=bool)
        frontier = np.asarray([node], dtype=np.int64)
        while frontier.size:
            lo = starts[frontier]
            hi = starts[frontier + 1]
            lens = hi - lo
            total = int(lens.sum())
            if not total:
                break
            gather = np.repeat(hi - np.cumsum(lens), lens) + np.arange(total)
            neighbours = targets[gather]
            fresh = np.unique(neighbours[~seen[neighbours]])
            seen[fresh] = True
            frontier = fresh
        seen[node] = False
        return np.flatnonzero(seen)

    # -------------------------------------------------------- state protocol
    def to_state(self, bundle, prefix: str) -> Dict[str, object]:
        """Serialize the columns verbatim into ``bundle`` under ``prefix``."""
        return {
            "is_forest": bool(self.is_forest),
            "pre": bundle.put(prefix + "pre", self.pre),
            "post": bundle.put(prefix + "post", self.post),
            "depth": bundle.put(prefix + "depth", self.depth),
            "count": bundle.put(prefix + "count", self.count),
            "store_slot": bundle.put(prefix + "store_slot", self.store_slot),
            "rank": bundle.put(prefix + "rank", self.rank),
            "order_by_pre": bundle.put(prefix + "order_by_pre", self.order_by_pre),
            "parent_starts": bundle.put(prefix + "parent_starts", self.parent_starts),
            "parent_ids": bundle.put(prefix + "parent_ids", self.parent_ids),
            "child_starts": bundle.put(prefix + "child_starts", self.child_starts),
            "child_ids": bundle.put(prefix + "child_ids", self.child_ids),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], bundle) -> "NodeTable":
        """Restore a table serialized by :meth:`to_state` (columns verbatim)."""
        def column(name: str, dtype) -> np.ndarray:
            array = np.asarray(bundle.get(state[name]), dtype=dtype)
            array.setflags(write=False)
            return array

        return cls(
            pre=column("pre", np.int64),
            post=column("post", np.int64),
            depth=column("depth", np.int64),
            count=column("count", np.int64),
            store_slot=column("store_slot", np.int64),
            rank=column("rank", np.int64),
            order_by_pre=column("order_by_pre", np.int64),
            parent_starts=column("parent_starts", np.int64),
            parent_ids=column("parent_ids", np.int32),
            child_starts=column("child_starts", np.int64),
            child_ids=column("child_ids", np.int32),
            is_forest=bool(state.get("is_forest", False)),
        )

    def __repr__(self) -> str:
        return (
            f"NodeTable(nodes={len(self)}, "
            f"{'forest' if self.is_forest else 'dag'})"
        )
