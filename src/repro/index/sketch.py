"""Derivation sketches (Section 3.1).

A derivation sketch summarizes, for one sentence, all heuristics (up to a
bounded number of derivation steps) that the sentence satisfies. Sketches are
merged into the corpus index; keeping them as standalone objects also lets the
index be built in parallel chunks and merged, as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..grammars.base import Expression, HeuristicGrammar
from ..text.sentence import Sentence

SketchKey = Tuple[str, Expression]
"""Index key: (grammar name, expression)."""


@dataclass
class DerivationSketch:
    """All (grammar, expression) pairs satisfied by a single sentence.

    Attributes:
        sentence_id: The sentence this sketch was built from.
        entries: Mapping from sketch key to the expression's derivation depth
            (complexity); depth ordering lets the index place generic rules
            above specific ones.
    """

    sentence_id: int
    entries: Dict[SketchKey, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: SketchKey) -> bool:
        return key in self.entries

    def keys(self) -> List[SketchKey]:
        """All sketch keys for this sentence."""
        return list(self.entries.keys())

    def add(self, grammar: HeuristicGrammar, expression: Expression) -> None:
        """Record that the sentence satisfies ``expression``."""
        key = (grammar.name, expression)
        if key not in self.entries:
            self.entries[key] = grammar.complexity(expression)


def build_sketch(
    sentence: Sentence,
    grammars: Iterable[HeuristicGrammar],
    max_depth: int,
) -> DerivationSketch:
    """Build the derivation sketch of ``sentence`` under ``grammars``.

    Args:
        sentence: The preprocessed sentence.
        grammars: The heuristic grammars to enumerate under.
        max_depth: Maximum number of derivation-rule applications per
            expression (10 in the paper's experiments).
    """
    sketch = DerivationSketch(sentence_id=sentence.sentence_id)
    for grammar in grammars:
        for expression in grammar.enumerate_expressions(sentence, max_depth):
            sketch.add(grammar, expression)
    return sketch
