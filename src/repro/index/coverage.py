"""Columnar coverage store: interned, immutable coverage sets.

Motivation (multi-layer refactor)
---------------------------------

Every layer of the reproduction used to round-trip coverage through copied
Python sets: the index materialized a fresh ``set`` per :meth:`coverage` call,
``heuristic()`` built a new ``frozenset`` per node, the benefit scorer walked
``C_r \\ P`` id by id in Python, and ranking by overlap intersected Python
sets against every index node. Following the compact in-memory representation
argument of "Extracting and Analyzing Hidden Graphs from Relational
Databases" (Xirogiannopoulos & Deshpande), this module replaces all of that
with a single columnar layer:

* :class:`CoverageStore` interns each **distinct** coverage exactly once as an
  immutable, sorted ``numpy`` ``int32`` array. Nodes, heuristics, and rule
  sets hold cheap :class:`CoverageView` handles; two nodes with identical
  coverage share one array (and one hash).
* :class:`CoverageView` is a :class:`collections.abc.Set` — existing callers
  that treat coverage as a set (``len``, ``in``, ``&``, ``|``, ``-``, ``<=``,
  ``==`` against plain sets) keep working unchanged — while hot paths use the
  vectorized primitives ``intersect_count``, ``subtract``, ``union_into``,
  ``overlap_with`` and ``new_ids_given`` instead of per-id Python loops.
* Dense coverages additionally cache a packed bitset (``numpy.packbits``), so
  intersect counts between two dense views are a few ``bitwise_and`` +
  popcount instructions per 64 sentences instead of a hash probe per id.

Migration notes
---------------

``LabelingHeuristic.coverage_ids`` may now be a :class:`CoverageView` instead
of a ``frozenset``; both are immutable set-likes, and ``with_coverage``
accepts either (views are kept as-is, avoiding a copy). ``CorpusIndex``
seals node id-sets into interned views once construction finishes; code that
mutates ``IndexNode.sentence_ids`` after sealing must go through
``CorpusIndex.add_sketch`` (which transparently un-seals).
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Dict, Iterable, Iterator, Optional, Union

import numpy as np

IdsLike = Union["CoverageView", Iterable[int], np.ndarray]

_EMPTY_IDS = np.empty(0, dtype=np.int32)
_EMPTY_IDS.setflags(write=False)

# A view caches a packed bitset once its density over the store's universe
# exceeds this fraction; below it, merge-style array intersections win.
DENSE_BITSET_DENSITY = 1.0 / 64.0


def _as_sorted_ids(ids: IdsLike) -> np.ndarray:
    """Normalize ``ids`` to a sorted, unique, read-only ``int32`` array."""
    if isinstance(ids, CoverageView):
        return ids.ids
    if not isinstance(ids, (np.ndarray, list, tuple)):
        # Sets, dict views, generators, other AbstractSets: np.asarray cannot
        # consume these directly.
        ids = list(ids)
    array = np.asarray(ids, dtype=np.int64)
    if array.ndim != 1:
        array = array.reshape(-1)
    if array.size:
        array = np.unique(array)  # sorts and dedups
    array = array.astype(np.int32, copy=False)
    array.setflags(write=False)
    return array


def _popcount(bits: np.ndarray) -> int:
    """Total number of set bits in a packed ``uint8`` array."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(bits).sum())
    return int(np.unpackbits(bits).sum())


class CoverageView(AbstractSet):
    """Immutable handle over one interned coverage set.

    Behaves like a ``frozenset`` of sentence ids (it is a
    :class:`collections.abc.Set`, so comparisons and binary operators against
    plain sets work, and its hash equals ``frozenset``'s for the same ids)
    while exposing vectorized primitives for the hot paths.
    """

    __slots__ = ("_ids", "_store", "_hash", "_bits", "_bits_universe")

    def __init__(self, ids: np.ndarray, store: Optional["CoverageStore"] = None) -> None:
        self._ids = ids
        self._store = store
        self._hash: Optional[int] = None
        self._bits: Optional[np.ndarray] = None
        self._bits_universe = -1

    # ------------------------------------------------------------- columnar
    @property
    def ids(self) -> np.ndarray:
        """The sorted, unique, read-only ``int32`` id array."""
        return self._ids

    @property
    def count(self) -> int:
        """``|C|`` — number of covered sentences."""
        return int(self._ids.size)

    @property
    def store(self) -> Optional["CoverageStore"]:
        """The interning store this view belongs to (None for free views)."""
        return self._store

    def _packed_bits(self) -> Optional[np.ndarray]:
        """Packed bitset over the store's universe, cached when dense enough.

        The cache is keyed to the universe size it was packed under: if the
        store's universe has grown since (e.g. the index was extended and
        re-sealed), the bitset is re-packed so two views always produce
        equal-length bit arrays.
        """
        if self._store is None or not self._ids.size:
            return None
        universe = self._store.universe_size
        if self._bits is not None and self._bits_universe == universe:
            return self._bits
        if universe <= 0 or int(self._ids[-1]) >= universe:
            return None
        if self._ids.size < universe * DENSE_BITSET_DENSITY:
            self._bits = None
            return None
        mask = np.zeros(universe, dtype=bool)
        mask[self._ids] = True
        self._bits = np.packbits(mask)
        self._bits_universe = universe
        return self._bits

    def intersect_count(self, other: IdsLike) -> int:
        """``|C ∩ other|`` without materializing the intersection."""
        if isinstance(other, np.ndarray) and other.dtype == np.bool_:
            return self.overlap_with(other)
        if isinstance(other, CoverageView):
            if other is self:
                return self.count
            mine, theirs = self._packed_bits(), other._packed_bits()
            if mine is not None and theirs is not None:
                return _popcount(np.bitwise_and(mine, theirs))
            a, b = self._ids, other._ids
        else:
            a, b = self._ids, _as_sorted_ids(other)
        if not a.size or not b.size:
            return 0
        if a.size > b.size:
            a, b = b, a
        # Probe the smaller array into the larger via binary search.
        positions = np.searchsorted(b, a)
        positions[positions == b.size] = b.size - 1
        return int(np.count_nonzero(b[positions] == a))

    def subtract(self, other: IdsLike) -> np.ndarray:
        """Ids in ``C`` but not in ``other`` (sorted ``int32`` array)."""
        if isinstance(other, np.ndarray) and other.dtype == np.bool_:
            return self.new_ids_given(other)
        b = _as_sorted_ids(other)
        if not self._ids.size or not b.size:
            return self._ids
        keep = np.isin(self._ids, b, assume_unique=True, invert=True)
        return self._ids[keep]

    def union_into(self, mask: np.ndarray) -> np.ndarray:
        """Set ``mask[id] = True`` for every covered id; returns ``mask``."""
        if self._ids.size:
            mask[self._ids] = True
        return mask

    def overlap_with(self, mask: np.ndarray) -> int:
        """``|C ∩ mask|`` for a boolean membership mask."""
        if not self._ids.size:
            return 0
        ids = self._ids
        if ids[-1] >= mask.size:
            ids = ids[ids < mask.size]
            if not ids.size:
                return 0
        return int(np.count_nonzero(mask[ids]))

    def new_ids_given(self, mask: np.ndarray) -> np.ndarray:
        """Ids **not** flagged in ``mask`` (the ``C_r \\ P`` primitive)."""
        if not self._ids.size:
            return self._ids
        ids = self._ids
        if ids[-1] >= mask.size:
            inside = ids[ids < mask.size]
            outside = ids[ids >= mask.size]
            kept = inside[~mask[inside]] if inside.size else inside
            return np.concatenate([kept, outside]) if outside.size else kept
        return ids[~mask[ids]]

    def to_set(self) -> frozenset:
        """Materialize a plain ``frozenset`` (compatibility escape hatch)."""
        return frozenset(int(i) for i in self._ids)

    # ------------------------------------------------------- set protocol
    def __len__(self) -> int:
        return int(self._ids.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids.tolist())

    def __contains__(self, item: object) -> bool:
        try:
            value = int(item)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        position = int(np.searchsorted(self._ids, value))
        return position < self._ids.size and int(self._ids[position]) == value

    @classmethod
    def _from_iterable(cls, iterable: Iterable[int]) -> frozenset:
        # Binary Set operators (& | - ^) produce plain frozensets: callers of
        # those operators expect generic set semantics, not interned views.
        return frozenset(iterable)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, CoverageView):
            return np.array_equal(self._ids, other._ids)
        if isinstance(other, (set, frozenset, AbstractSet)):
            return len(other) == len(self) and all(i in self for i in other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        # Matches frozenset's hash (collections.abc.Set._hash), so views and
        # frozensets with equal contents collide correctly in dicts/sets.
        if self._hash is None:
            self._hash = self._hash_ids()
        return self._hash

    def _hash_ids(self) -> int:
        return AbstractSet._hash(self)

    def __repr__(self) -> str:
        preview = ", ".join(str(int(i)) for i in self._ids[:6])
        suffix = ", ..." if self._ids.size > 6 else ""
        return f"CoverageView({{{preview}{suffix}}}, n={self._ids.size})"


class CoverageStore:
    """Interning store for coverage sets over a sentence-id universe.

    Each distinct coverage is held exactly once; :meth:`intern` returns the
    shared :class:`CoverageView` for its contents, so identical coverages are
    identical objects (``a is b``) and caches may key by ``id(view)``.

    Args:
        universe_size: Number of sentences (ids are ``0 .. universe_size-1``).
            May be grown later with :meth:`ensure_universe`; the universe only
            gates bitset acceleration, not correctness.
    """

    def __init__(self, universe_size: int = 0) -> None:
        self._universe = int(universe_size)
        self._interned: Dict[bytes, CoverageView] = {}
        self.empty = CoverageView(_EMPTY_IDS, store=self)
        self._interned[b""] = self.empty

    # ----------------------------------------------------------------- admin
    @property
    def universe_size(self) -> int:
        """Current sentence-id universe size."""
        return self._universe

    @property
    def num_interned(self) -> int:
        """Number of distinct coverage sets interned (including empty)."""
        return len(self._interned)

    @property
    def bytes_interned(self) -> int:
        """Total bytes held by the interned id arrays."""
        return sum(view.ids.nbytes for view in self._interned.values())

    def ensure_universe(self, size: int) -> None:
        """Grow the universe to at least ``size`` sentences."""
        if size > self._universe:
            self._universe = int(size)

    # ------------------------------------------------------------- interning
    def intern(self, ids: IdsLike) -> CoverageView:
        """The unique view for ``ids`` (created on first sight)."""
        if isinstance(ids, CoverageView) and ids.store is self:
            return ids
        array = _as_sorted_ids(ids)
        key = array.tobytes()
        view = self._interned.get(key)
        if view is None:
            view = CoverageView(array, store=self)
            self._interned[key] = view
            if array.size:
                self.ensure_universe(int(array[-1]) + 1)
        return view

    def from_mask(self, mask: np.ndarray) -> CoverageView:
        """Intern the coverage flagged in a boolean ``mask``."""
        return self.intern(np.flatnonzero(mask))

    def union(self, coverages: Iterable[IdsLike]) -> CoverageView:
        """Intern the union of several coverages via one running mask."""
        mask = self.new_mask()
        for coverage in coverages:
            ids = _as_sorted_ids(coverage)
            if not ids.size:
                continue
            if int(ids[-1]) >= mask.size:
                grown = np.zeros(int(ids[-1]) + 1, dtype=bool)
                grown[: mask.size] = mask
                mask = grown
            mask[ids] = True
        return self.from_mask(mask)

    def new_mask(self) -> np.ndarray:
        """A fresh all-False membership mask over the universe."""
        return np.zeros(max(self._universe, 1), dtype=bool)

    def mask_of(self, ids: IdsLike) -> np.ndarray:
        """A boolean membership mask with ``ids`` flagged."""
        array = _as_sorted_ids(ids)
        size = max(self._universe, int(array[-1]) + 1 if array.size else 1)
        mask = np.zeros(size, dtype=bool)
        if array.size:
            mask[array] = True
        return mask

    # -------------------------------------------------------- state protocol
    def interned_views(self) -> list:
        """The interned views in insertion order (slot order for checkpoints)."""
        return list(self._interned.values())

    def to_state(self, bundle, prefix: str = "coverage/") -> Dict[str, object]:
        """Serialize every interned coverage as one columnar array pair.

        The distinct coverages are concatenated into a single ``int32``
        values array plus an ``int64`` offsets array (CSR layout); slot ``i``
        is ``values[offsets[i]:offsets[i+1]]``, in interning order, so other
        layers can reference coverages by slot index. This is also the seam
        the planned memory-mapped arena plugs into: the values column can be
        backed by an mmap without changing :class:`CoverageView` handles.

        Args:
            bundle: :class:`repro.engine.state.ArrayBundle` receiving arrays.
            prefix: Namespace for the bundle keys.
        """
        views = self.interned_views()
        offsets = np.zeros(len(views) + 1, dtype=np.int64)
        for position, view in enumerate(views):
            offsets[position + 1] = offsets[position] + view.ids.size
        values = (
            np.concatenate([view.ids for view in views])
            if views and int(offsets[-1])
            else np.empty(0, dtype=np.int32)
        )
        return {
            "universe_size": int(self._universe),
            "num_interned": len(views),
            "values": bundle.put(prefix + "values", values.astype(np.int32, copy=False)),
            "offsets": bundle.put(prefix + "offsets", offsets),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], bundle) -> "CoverageStore":
        """Rebuild a store (re-interning every slot) from :meth:`to_state`.

        Returns the store; slot order is preserved, so
        ``store.interned_views()[i]`` is the view serialized at slot ``i``.
        """
        store = cls(universe_size=int(state.get("universe_size", 0)))
        values = np.asarray(bundle.get(state["values"]), dtype=np.int32)
        offsets = np.asarray(bundle.get(state["offsets"]), dtype=np.int64)
        for position in range(int(state.get("num_interned", offsets.size - 1))):
            store.intern(values[offsets[position]:offsets[position + 1]])
        return store

    def stats(self) -> Dict[str, float]:
        """Summary statistics for diagnostics and benchmarks."""
        return {
            "universe_size": float(self._universe),
            "num_interned": float(self.num_interned),
            "bytes_interned": float(self.bytes_interned),
        }

    def __repr__(self) -> str:
        return (
            f"CoverageStore(universe={self._universe}, "
            f"interned={self.num_interned})"
        )


def as_id_array(ids: IdsLike) -> np.ndarray:
    """Public helper: normalize any id collection to a sorted int32 array."""
    return _as_sorted_ids(ids)


def membership_mask(ids: IdsLike, size: int) -> np.ndarray:
    """Boolean membership mask of length >= ``size`` for ``ids``."""
    array = _as_sorted_ids(ids)
    length = max(int(size), int(array[-1]) + 1 if array.size else 1)
    mask = np.zeros(length, dtype=bool)
    if array.size:
        mask[array] = True
    return mask
