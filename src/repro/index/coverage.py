"""Columnar coverage store: interned, immutable coverage sets.

Motivation (multi-layer refactor)
---------------------------------

Every layer of the reproduction used to round-trip coverage through copied
Python sets: the index materialized a fresh ``set`` per :meth:`coverage` call,
``heuristic()`` built a new ``frozenset`` per node, the benefit scorer walked
``C_r \\ P`` id by id in Python, and ranking by overlap intersected Python
sets against every index node. Following the compact in-memory representation
argument of "Extracting and Analyzing Hidden Graphs from Relational
Databases" (Xirogiannopoulos & Deshpande), this module replaces all of that
with a single columnar layer:

* :class:`CoverageStore` interns each **distinct** coverage exactly once as an
  immutable, sorted ``numpy`` ``int32`` array. Nodes, heuristics, and rule
  sets hold cheap :class:`CoverageView` handles; two nodes with identical
  coverage share one array (and one hash).
* :class:`CoverageView` is a :class:`collections.abc.Set` — existing callers
  that treat coverage as a set (``len``, ``in``, ``&``, ``|``, ``-``, ``<=``,
  ``==`` against plain sets) keep working unchanged — while hot paths use the
  vectorized primitives ``intersect_count``, ``subtract``, ``union_into``,
  ``overlap_with`` and ``new_ids_given`` instead of per-id Python loops.
* Dense coverages additionally cache a packed bitset (``numpy.packbits``), so
  intersect counts between two dense views are a few ``bitwise_and`` +
  popcount instructions per 64 sentences instead of a hash probe per id.

Backends
--------

The store supports two backends behind the same :class:`CoverageView` handle:

* ``backend="memory"`` (default) — interned arrays live on the Python heap,
  exactly as before.
* ``backend="arena"`` — interned arrays live in a memory-mapped
  :class:`~repro.index.arena.CoverageArena` file; ``view.ids`` is a
  **zero-copy mmap slice**, so the OS page cache decides which coverage
  bytes are resident and corpora larger than RAM stay queryable. Packed
  bitsets (the dense fast path) are materialized lazily into an LRU cache
  bounded by :attr:`~repro.index.arena.ArenaConfig.bitset_cache_bytes`, so
  resident memory stays O(cache budget) while ``top_by_overlap``/benefit
  keep their columnar speed.

Migration notes
---------------

``LabelingHeuristic.coverage_ids`` may now be a :class:`CoverageView` instead
of a ``frozenset``; both are immutable set-likes, and ``with_coverage``
accepts either (views are kept as-is, avoiding a copy). ``CorpusIndex``
seals node id-sets into interned views once construction finishes; code that
mutates ``IndexNode.sentence_ids`` after sealing must go through
``CorpusIndex.add_sketch`` (which transparently un-seals).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from collections.abc import Set as AbstractSet
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from .arena import ArenaConfig, CoverageArena

IdsLike = Union["CoverageView", Iterable[int], np.ndarray]

_EMPTY_IDS = np.empty(0, dtype=np.int32)
_EMPTY_IDS.setflags(write=False)

# A view caches a packed bitset once its density over the store's universe
# exceeds this fraction; below it, merge-style array intersections win.
DENSE_BITSET_DENSITY = 1.0 / 64.0

COVERAGE_BACKENDS = ("memory", "arena")


def _as_sorted_ids(ids: IdsLike) -> np.ndarray:
    """Normalize ``ids`` to a sorted, unique, read-only ``int32`` array."""
    if isinstance(ids, CoverageView):
        return ids.ids
    if not isinstance(ids, (np.ndarray, list, tuple)):
        # Sets, dict views, generators, other AbstractSets: np.asarray cannot
        # consume these directly.
        ids = list(ids)
    array = np.asarray(ids, dtype=np.int64)
    if array.ndim != 1:
        array = array.reshape(-1)
    if array.size:
        array = np.unique(array)  # sorts and dedups
    array = array.astype(np.int32, copy=False)
    array.setflags(write=False)
    return array


def _popcount(bits: np.ndarray) -> int:
    """Total number of set bits in a packed ``uint8`` array."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return int(np.bitwise_count(bits).sum())
    return int(np.unpackbits(bits).sum())


class CoverageView(AbstractSet):
    """Immutable handle over one interned coverage set.

    Behaves like a ``frozenset`` of sentence ids (it is a
    :class:`collections.abc.Set`, so comparisons and binary operators against
    plain sets work, and its hash equals ``frozenset``'s for the same ids)
    while exposing vectorized primitives for the hot paths. The backing id
    array may live on the heap or be a zero-copy slice of a memory-mapped
    :class:`~repro.index.arena.CoverageArena` — callers cannot tell the
    difference.
    """

    __slots__ = ("_ids", "_store", "_slot", "_hash", "_bits", "_bits_universe")

    def __init__(
        self,
        ids: np.ndarray,
        store: Optional["CoverageStore"] = None,
        slot: Optional[int] = None,
    ) -> None:
        self._ids = ids
        self._store = store
        self._slot = slot
        self._hash: Optional[int] = None
        self._bits: Optional[np.ndarray] = None
        self._bits_universe = -1

    # ------------------------------------------------------------- columnar
    @property
    def ids(self) -> np.ndarray:
        """The sorted, unique, read-only ``int32`` id array."""
        return self._ids

    @property
    def count(self) -> int:
        """``|C|`` — number of covered sentences."""
        return int(self._ids.size)

    @property
    def store(self) -> Optional["CoverageStore"]:
        """The interning store this view belongs to (None for free views)."""
        return self._store

    @property
    def slot(self) -> Optional[int]:
        """This view's interning slot in its store (None for free views)."""
        return self._slot

    def _packed_bits(self) -> Optional[np.ndarray]:
        """Packed bitset over the store's universe, cached when dense enough.

        Stores with a bitset byte budget (the arena backend) own the cache:
        bitsets are materialized lazily and evicted LRU so resident memory
        stays bounded. Budget-less stores keep the original per-view cache,
        keyed to the universe size it was packed under: if the store's
        universe has grown since (e.g. the index was extended and re-sealed),
        the bitset is re-packed so two views always produce equal-length bit
        arrays.
        """
        store = self._store
        if store is None or not self._ids.size:
            return None
        if store.bitset_cache_budget is not None:
            return store._packed_bits_for(self)
        universe = store.universe_size
        if self._bits is not None and self._bits_universe == universe:
            return self._bits
        if universe <= 0 or int(self._ids[-1]) >= universe:
            return None
        if self._ids.size < universe * DENSE_BITSET_DENSITY:
            self._bits = None
            return None
        mask = np.zeros(universe, dtype=bool)
        mask[self._ids] = True
        self._bits = np.packbits(mask)
        self._bits_universe = universe
        return self._bits

    def intersect_count(self, other: IdsLike) -> int:
        """``|C ∩ other|`` without materializing the intersection."""
        if isinstance(other, np.ndarray) and other.dtype == np.bool_:
            return self.overlap_with(other)
        if isinstance(other, CoverageView):
            if other is self:
                return self.count
            mine, theirs = self._packed_bits(), other._packed_bits()
            # Equal lengths only: views from different stores (e.g. a shared
            # base and a tenant overlay) may pack against different universe
            # sizes — fall back to the merge path rather than misalign bits.
            if mine is not None and theirs is not None and mine.size == theirs.size:
                return _popcount(np.bitwise_and(mine, theirs))
            a, b = self._ids, other._ids
        else:
            a, b = self._ids, _as_sorted_ids(other)
        if not a.size or not b.size:
            return 0
        if a.size > b.size:
            a, b = b, a
        # Probe the smaller array into the larger via binary search.
        positions = np.searchsorted(b, a)
        positions[positions == b.size] = b.size - 1
        return int(np.count_nonzero(b[positions] == a))

    def subtract(self, other: IdsLike) -> np.ndarray:
        """Ids in ``C`` but not in ``other`` (sorted ``int32`` array)."""
        if isinstance(other, np.ndarray) and other.dtype == np.bool_:
            return self.new_ids_given(other)
        b = _as_sorted_ids(other)
        if not self._ids.size or not b.size:
            return self._ids
        keep = np.isin(self._ids, b, assume_unique=True, invert=True)
        return self._ids[keep]

    def union_into(self, mask: np.ndarray) -> np.ndarray:
        """Set ``mask[id] = True`` for every covered id; returns ``mask``."""
        if self._ids.size:
            mask[self._ids] = True
        return mask

    def overlap_with(self, mask: np.ndarray) -> int:
        """``|C ∩ mask|`` for a boolean membership mask."""
        if not self._ids.size:
            return 0
        ids = self._ids
        if ids[-1] >= mask.size:
            ids = ids[ids < mask.size]
            if not ids.size:
                return 0
        return int(np.count_nonzero(mask[ids]))

    def new_ids_given(self, mask: np.ndarray) -> np.ndarray:
        """Ids **not** flagged in ``mask`` (the ``C_r \\ P`` primitive)."""
        if not self._ids.size:
            return self._ids
        ids = self._ids
        if ids[-1] >= mask.size:
            inside = ids[ids < mask.size]
            outside = ids[ids >= mask.size]
            kept = inside[~mask[inside]] if inside.size else inside
            return np.concatenate([kept, outside]) if outside.size else kept
        return ids[~mask[ids]]

    def to_set(self) -> frozenset:
        """Materialize a plain ``frozenset`` (compatibility escape hatch)."""
        return frozenset(int(i) for i in self._ids)

    # ------------------------------------------------------- set protocol
    def __len__(self) -> int:
        return int(self._ids.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids.tolist())

    def __contains__(self, item: object) -> bool:
        try:
            value = int(item)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        position = int(np.searchsorted(self._ids, value))
        return position < self._ids.size and int(self._ids[position]) == value

    @classmethod
    def _from_iterable(cls, iterable: Iterable[int]) -> frozenset:
        # Binary Set operators (& | - ^) produce plain frozensets: callers of
        # those operators expect generic set semantics, not interned views.
        return frozenset(iterable)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, CoverageView):
            return np.array_equal(self._ids, other._ids)
        if isinstance(other, (set, frozenset, AbstractSet)):
            return len(other) == len(self) and all(i in self for i in other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        # Matches frozenset's hash (collections.abc.Set._hash), so views and
        # frozensets with equal contents collide correctly in dicts/sets.
        if self._hash is None:
            self._hash = self._hash_ids()
        return self._hash

    def _hash_ids(self) -> int:
        return AbstractSet._hash(self)

    def __repr__(self) -> str:
        preview = ", ".join(str(int(i)) for i in self._ids[:6])
        suffix = ", ..." if self._ids.size > 6 else ""
        return f"CoverageView({{{preview}{suffix}}}, n={self._ids.size})"


class CoverageStore:
    """Interning store for coverage sets over a sentence-id universe.

    Each distinct coverage is held exactly once; :meth:`intern` returns the
    shared :class:`CoverageView` for its contents, so identical coverages are
    identical objects (``a is b``) and caches may key by ``id(view)``.

    Args:
        universe_size: Number of sentences (ids are ``0 .. universe_size-1``).
            May be grown later with :meth:`ensure_universe`; the universe only
            gates bitset acceleration, not correctness.
        backend: ``"memory"`` (heap arrays, the default) or ``"arena"``
            (arrays live in a memory-mapped :class:`CoverageArena` file and
            views are zero-copy mmap slices).
        path: Arena file location for ``backend="arena"``. An existing arena
            file is reattached; a missing one is created. ``None`` defers to
            ``arena_config.path`` (and ultimately to a temporary file).
        arena_config: :class:`~repro.index.arena.ArenaConfig` tuning (bitset
            cache budget, default path).
        create: Force a **fresh** arena, truncating any existing file at the
            path instead of attaching to it. Index builds pass this: adopting
            a stale arena's slots into a new build would inflate the universe
            (silently disabling the bitset fast path) and grow the file
            without bound across reruns.
    """

    def __init__(
        self,
        universe_size: int = 0,
        backend: str = "memory",
        path: Optional[str] = None,
        arena_config: Optional[ArenaConfig] = None,
        create: bool = False,
        _arena: Optional[CoverageArena] = None,
    ) -> None:
        if backend not in COVERAGE_BACKENDS:
            raise ConfigurationError(
                f"unknown coverage backend {backend!r}; expected one of "
                f"{', '.join(COVERAGE_BACKENDS)}"
            )
        self.backend = backend
        self._universe = int(universe_size)
        self._views: List[CoverageView] = []
        self._by_key: Dict[bytes, int] = {}
        self._arena: Optional[CoverageArena] = None
        self._bitset_budget: Optional[int] = None
        self._bitset_cache: "OrderedDict[int, Tuple[np.ndarray, int]]" = OrderedDict()
        self._bitset_cache_bytes = 0
        self._bitset_hits = 0
        self._bitset_misses = 0
        self._bitset_evictions = 0
        if backend == "arena":
            config = arena_config or ArenaConfig()
            self._bitset_budget = int(config.bitset_cache_bytes)
            if _arena is not None:
                self._arena = _arena
            else:
                target = path if path is not None else config.path
                if not create and target is not None and os.path.exists(target):
                    self._arena = CoverageArena.open(target)
                else:
                    self._arena = CoverageArena.create(target)
            self._adopt_arena_slots()
        self.empty = self.intern(())

    def _adopt_arena_slots(self) -> None:
        """Register views for every slot already present in the arena.

        Runs once at attach time: one sequential pass over the mapped values
        column computes each slot's dedup digest and the universe bound.
        The digests hash the mmap slices in place (no per-slot heap copy),
        so the pass streams through the page cache the digest verification
        in :meth:`CoverageArena.open` just warmed.
        """
        arena = self._arena
        assert arena is not None
        max_id = -1
        for slot in range(arena.num_interned):
            ids = arena.values_slice(slot)
            view = CoverageView(ids, store=self, slot=slot)
            self._views.append(view)
            self._by_key.setdefault(self._key_of(ids), slot)
            if ids.size:
                max_id = max(max_id, int(ids[-1]))
        if max_id >= 0:
            self.ensure_universe(max_id + 1)

    def _key_of(self, array: np.ndarray) -> bytes:
        """Dedup key for one normalized (sorted ``int32``) coverage array.

        The memory backend keys by the raw bytes themselves (exact). The
        arena backend keys by a 128-bit BLAKE2b digest of the array buffer —
        computed without copying the column onto the heap — so the dedup map
        stays O(digest) per distinct coverage instead of keeping every
        column resident, the whole point of spilling columns to the arena.
        """
        if self._arena is not None:
            return hashlib.blake2b(
                np.ascontiguousarray(array, dtype=np.int32), digest_size=16
            ).digest()
        return array.tobytes()

    # ----------------------------------------------------------------- admin
    @property
    def universe_size(self) -> int:
        """Current sentence-id universe size."""
        return self._universe

    @property
    def num_interned(self) -> int:
        """Number of distinct coverage sets interned (including empty)."""
        return len(self._views)

    @property
    def bytes_interned(self) -> int:
        """Total bytes held by the interned id arrays.

        For the arena backend this is the on-disk values column size; the
        heap-resident footprint is :attr:`resident_coverage_bytes`.
        """
        return sum(view.ids.nbytes for view in self._views)

    @property
    def arena(self) -> Optional[CoverageArena]:
        """The backing arena (None for the memory backend)."""
        return self._arena

    @property
    def bitset_cache_budget(self) -> Optional[int]:
        """LRU byte budget for packed bitsets (None = unbounded per-view)."""
        return self._bitset_budget

    @property
    def resident_coverage_bytes(self) -> int:
        """Heap bytes pinned by coverage data (excludes mmap'd columns).

        Memory backend: the interned arrays themselves. Arena backend: the
        bitset LRU cache plus the offsets column — the values column lives in
        the file and is only resident at the OS page cache's discretion.
        """
        if self._arena is not None:
            return self._bitset_cache_bytes + (self.num_interned + 1) * 8
        return self.bytes_interned + self._bitset_cache_bytes

    def ensure_universe(self, size: int) -> None:
        """Grow the universe to at least ``size`` sentences."""
        if size > self._universe:
            self._universe = int(size)
            if self._bitset_budget is not None and self._bitset_cache:
                # Budgeted bitsets are keyed to the universe they were packed
                # under; a grown universe invalidates them all at once.
                self._bitset_cache.clear()
                self._bitset_cache_bytes = 0

    # ------------------------------------------------------------- interning
    def intern(self, ids: IdsLike) -> CoverageView:
        """The unique view for ``ids`` (created on first sight)."""
        if isinstance(ids, CoverageView) and ids.store is self:
            return ids
        array = _as_sorted_ids(ids)
        key = self._key_of(array)
        slot = self._by_key.get(key)
        if slot is not None:
            return self._views[slot]
        if array.size:
            self.ensure_universe(int(array[-1]) + 1)
        if self._arena is not None:
            new_slot = self._arena.append(array)
            view = CoverageView(
                self._arena.values_slice(new_slot), store=self, slot=new_slot
            )
        else:
            view = CoverageView(array, store=self, slot=len(self._views))
        self._by_key[key] = len(self._views)
        self._views.append(view)
        return view

    def intern_many(self, ids_list: Sequence[IdsLike]) -> List[CoverageView]:
        """Intern several coverages with one backend write; returns views.

        On the arena backend all new coverages are appended as **one**
        contiguous values segment (column concatenation, offsets rebased onto
        the current extent) — this is what :meth:`CorpusIndex.seal` and the
        parallel shard-arena merge call, keeping the number of file writes
        O(batches) instead of O(coverages).
        """
        resolved: List[Optional[CoverageView]] = []
        keys: List[Optional[bytes]] = []
        new_order: List[bytes] = []
        new_arrays: Dict[bytes, np.ndarray] = {}
        for ids in ids_list:
            if isinstance(ids, CoverageView) and ids.store is self:
                resolved.append(ids)
                keys.append(None)
                continue
            array = _as_sorted_ids(ids)
            key = self._key_of(array)
            if key in self._by_key:
                resolved.append(self._views[self._by_key[key]])
                keys.append(None)
                continue
            resolved.append(None)
            keys.append(key)
            if key not in new_arrays:
                new_arrays[key] = array
                new_order.append(key)
        if new_order:
            arrays = [new_arrays[key] for key in new_order]
            max_id = max(
                (int(a[-1]) for a in arrays if a.size), default=-1
            )
            if max_id >= 0:
                self.ensure_universe(max_id + 1)
            if self._arena is not None:
                slots = self._arena.append_many(arrays)
                for key, slot in zip(new_order, slots):
                    view = CoverageView(
                        self._arena.values_slice(slot), store=self, slot=slot
                    )
                    self._by_key[key] = len(self._views)
                    self._views.append(view)
            else:
                for key, array in zip(new_order, arrays):
                    view = CoverageView(array, store=self, slot=len(self._views))
                    self._by_key[key] = len(self._views)
                    self._views.append(view)
        return [
            view if view is not None else self._views[self._by_key[keys[i]]]
            for i, view in enumerate(resolved)
        ]

    def from_mask(self, mask: np.ndarray) -> CoverageView:
        """Intern the coverage flagged in a boolean ``mask``."""
        return self.intern(np.flatnonzero(mask))

    def union(self, coverages: Iterable[IdsLike]) -> CoverageView:
        """Intern the union of several coverages via one running mask."""
        mask = self.new_mask()
        for coverage in coverages:
            ids = _as_sorted_ids(coverage)
            if not ids.size:
                continue
            if int(ids[-1]) >= mask.size:
                grown = np.zeros(int(ids[-1]) + 1, dtype=bool)
                grown[: mask.size] = mask
                mask = grown
            mask[ids] = True
        return self.from_mask(mask)

    def new_mask(self) -> np.ndarray:
        """A fresh all-False membership mask over the universe."""
        return np.zeros(max(self._universe, 1), dtype=bool)

    def mask_of(self, ids: IdsLike) -> np.ndarray:
        """A boolean membership mask with ``ids`` flagged."""
        array = _as_sorted_ids(ids)
        size = max(self._universe, int(array[-1]) + 1 if array.size else 1)
        mask = np.zeros(size, dtype=bool)
        if array.size:
            mask[array] = True
        return mask

    # ------------------------------------------------------ budgeted bitsets
    def _packed_bits_for(self, view: CoverageView) -> Optional[np.ndarray]:
        """Packed bitset for ``view`` under the LRU byte budget.

        Returns None when the view is too sparse for the bitset fast path
        (the caller falls back to merge intersections). A bitset larger than
        the whole budget is computed but never cached, so one giant coverage
        cannot pin the budget.
        """
        budget = self._bitset_budget
        if budget is not None and budget <= 0:
            return None
        ids = view._ids
        slot = view._slot
        if slot is None or not ids.size:
            return None
        universe = self._universe
        if universe <= 0 or int(ids[-1]) >= universe:
            return None
        if ids.size < universe * DENSE_BITSET_DENSITY:
            return None
        entry = self._bitset_cache.get(slot)
        if entry is not None:
            bits, packed_universe = entry
            if packed_universe == universe:
                self._bitset_cache.move_to_end(slot)
                self._bitset_hits += 1
                return bits
            del self._bitset_cache[slot]
            self._bitset_cache_bytes -= bits.nbytes
        mask = np.zeros(universe, dtype=bool)
        mask[ids] = True
        bits = np.packbits(mask)
        self._bitset_misses += 1
        if budget is None or bits.nbytes <= budget:
            self._bitset_cache[slot] = (bits, universe)
            self._bitset_cache_bytes += bits.nbytes
            while (
                budget is not None
                and self._bitset_cache_bytes > budget
                and len(self._bitset_cache) > 1
            ):
                _, (evicted, _) = self._bitset_cache.popitem(last=False)
                self._bitset_cache_bytes -= evicted.nbytes
                self._bitset_evictions += 1
        return bits

    def bitset_cache_stats(self) -> Dict[str, float]:
        """Budget, residency and hit-rate counters for the bitset cache."""
        return {
            "budget_bytes": float(self._bitset_budget or 0),
            "cached_bytes": float(self._bitset_cache_bytes),
            "cached_entries": float(len(self._bitset_cache)),
            "hits": float(self._bitset_hits),
            "misses": float(self._bitset_misses),
            "evictions": float(self._bitset_evictions),
        }

    # -------------------------------------------------------- state protocol
    def interned_views(self) -> list:
        """The interned views in insertion order (slot order for checkpoints)."""
        return list(self._views)

    def flush(self) -> None:
        """Persist the backing arena (no-op for the memory backend)."""
        if self._arena is not None:
            self._arena.flush()

    def close(self) -> None:
        """Release the backing arena and the bitset cache. Idempotent.

        Interned views stay readable (they hold their own reference to the
        arena's memory map), but the store stops pinning the mapping and the
        file handle — the half of the strict-unlink contract the store owns.
        The memory backend only drops its bitset cache.
        """
        if self._arena is not None:
            self._arena.close()
        self._bitset_cache.clear()
        self._bitset_cache_bytes = 0

    def detach_arena(self) -> None:
        """Release the arena mapping for a cross-process handoff (pre-fork).

        Closes the arena's descriptor and mapping and rebinds every interned
        view to a dormant state, so nothing in this process — and nothing a
        forked child inherits — pins the parent's mmap. Coverage reads raise
        until :meth:`reattach_arena` runs (in the child, against a fresh
        mapping of the same file). No-op for the memory backend.
        """
        if self._arena is None or self._arena.closed:
            return
        self._arena.detach()
        for view in self._views:
            # Dormant marker: any accidental read fails loudly (`None` has
            # no `.size`) instead of serving stale mapped bytes.
            view._ids = None
            view._bits = None
            view._bits_universe = -1
        self._bitset_cache.clear()
        self._bitset_cache_bytes = 0

    def reattach_arena(self) -> None:
        """Re-map the arena by path and rebind every view (post-spawn half).

        Each view's id array becomes a zero-copy slice of the *fresh*
        mapping, digest-verified by :meth:`CoverageArena.reattach` — the
        worker-process counterpart of :meth:`detach_arena`. Idempotent; a
        no-op for the memory backend.
        """
        if self._arena is None:
            return
        self._arena.reattach()
        for slot, view in enumerate(self._views):
            if view._ids is None:
                view._ids = self._arena.values_slice(slot)

    def find(self, ids: IdsLike) -> Optional[CoverageView]:
        """The interned view for ``ids`` if one exists, else None (no intern).

        The read-only half of :meth:`intern`: overlay stores probe their
        shared base with this before falling back to a tenant-local intern.
        """
        if isinstance(ids, CoverageView) and ids.store is self:
            return ids
        array = _as_sorted_ids(ids)
        slot = self._by_key.get(self._key_of(array))
        return self._views[slot] if slot is not None else None

    def to_state(self, bundle, prefix: str = "coverage/") -> Dict[str, object]:
        """Serialize the interned coverages.

        Memory backend: the distinct coverages are concatenated into a single
        ``int32`` values array plus an ``int64`` offsets array (CSR layout);
        slot ``i`` is ``values[offsets[i]:offsets[i+1]]``, in interning order,
        so other layers can reference coverages by slot index.

        Arena backend: the columns already live in the arena file, so the
        state is a **reference** — the arena path plus a content digest —
        instead of a re-serialized copy; :meth:`from_state` reattaches the
        file and verifies the digest. The checkpoint stays O(manifest) no
        matter how large the coverage columns are.

        Args:
            bundle: :class:`repro.engine.state.ArrayBundle` receiving arrays.
            prefix: Namespace for the bundle keys.
        """
        if self._arena is not None:
            self._arena.flush()
            return {
                "universe_size": int(self._universe),
                "num_interned": self.num_interned,
                "backend": "arena",
                "arena": {
                    "path": os.path.abspath(self._arena.path),
                    "digest": self._arena.digest,
                    "num_interned": self._arena.num_interned,
                    "num_values": self._arena.num_values,
                    "read_only": self._arena.read_only,
                },
            }
        views = self._views
        offsets = np.zeros(len(views) + 1, dtype=np.int64)
        for position, view in enumerate(views):
            offsets[position + 1] = offsets[position] + view.ids.size
        values = (
            np.concatenate([view.ids for view in views])
            if views and int(offsets[-1])
            else np.empty(0, dtype=np.int32)
        )
        return {
            "universe_size": int(self._universe),
            "num_interned": len(views),
            "backend": "memory",
            "values": bundle.put(prefix + "values", values.astype(np.int32, copy=False)),
            "offsets": bundle.put(prefix + "offsets", offsets),
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        bundle,
        arena_config: Optional[ArenaConfig] = None,
    ) -> "CoverageStore":
        """Rebuild a store from :meth:`to_state` output.

        Arena references are reattached in place (the file is opened and its
        content digest verified — a missing, truncated, or modified arena
        raises :class:`~repro.errors.ConfigurationError`); inline column
        states are re-interned as before. Slot order is preserved either
        way, so ``store.interned_views()[i]`` is the view serialized at slot
        ``i``.

        Args:
            state: :meth:`to_state` output.
            bundle: Array source for inline states.
            arena_config: Runtime arena tuning (bitset cache budget) applied
                when reattaching; the arena *path* always comes from the
                state reference, not the config.
        """
        backend = state.get("backend", "memory")
        if backend == "overlay":
            from .overlay import OverlayCoverageStore

            return OverlayCoverageStore.from_state(
                state, bundle, arena_config=arena_config
            )
        if backend == "arena":
            reference = state.get("arena")
            if not isinstance(reference, dict) or not reference.get("path"):
                raise ConfigurationError(
                    "arena-backed coverage state records no arena reference"
                )
            arena = CoverageArena.open(
                str(reference["path"]),
                expected_digest=reference.get("digest"),
                read_only=bool(reference.get("read_only", False)),
            )
            store = cls(
                universe_size=int(state.get("universe_size", 0)),
                backend="arena",
                arena_config=arena_config,
                _arena=arena,
            )
            recorded = state.get("num_interned")
            if recorded is not None and int(recorded) != store.num_interned:
                raise ConfigurationError(
                    f"coverage state records num_interned={recorded} but the "
                    f"arena at {arena.path} holds {store.num_interned} slots"
                )
            return store
        if backend != "memory":
            raise ConfigurationError(
                f"unknown coverage state backend {backend!r}"
            )
        values = np.asarray(bundle.get(state["values"]), dtype=np.int32)
        offsets = np.asarray(bundle.get(state["offsets"]), dtype=np.int64)
        if (
            offsets.size == 0
            or int(offsets[0]) != 0
            or int(offsets[-1]) != values.size
            or (offsets.size > 1 and bool(np.any(np.diff(offsets) < 0)))
        ):
            raise ConfigurationError(
                "coverage state offsets column is inconsistent with its "
                "values column"
            )
        recorded = state.get("num_interned")
        if recorded is not None and int(recorded) != offsets.size - 1:
            # The offsets column is the ground truth for how many coverages
            # were serialized; trusting a disagreeing num_interned used to
            # silently truncate (or overrun) the restored store.
            raise ConfigurationError(
                f"coverage state records num_interned={recorded} but its "
                f"offsets column holds {offsets.size - 1} slots"
            )
        store = cls(universe_size=int(state.get("universe_size", 0)))
        for position in range(offsets.size - 1):
            store.intern(values[offsets[position]:offsets[position + 1]])
        return store

    def stats(self) -> Dict[str, float]:
        """Summary statistics for diagnostics and benchmarks."""
        stats = {
            "universe_size": float(self._universe),
            "num_interned": float(self.num_interned),
            "bytes_interned": float(self.bytes_interned),
            "resident_coverage_bytes": float(self.resident_coverage_bytes),
        }
        if self._arena is not None:
            stats.update(
                {f"bitset_{k}": v for k, v in self.bitset_cache_stats().items()}
            )
        return stats

    def __repr__(self) -> str:
        return (
            f"CoverageStore(universe={self._universe}, "
            f"interned={self.num_interned}, backend={self.backend!r})"
        )


def as_id_array(ids: IdsLike) -> np.ndarray:
    """Public helper: normalize any id collection to a sorted int32 array."""
    return _as_sorted_ids(ids)


def membership_mask(ids: IdsLike, size: int) -> np.ndarray:
    """Boolean membership mask of length >= ``size`` for ``ids``."""
    array = _as_sorted_ids(ids)
    length = max(int(size), int(array[-1]) + 1 if array.size else 1)
    mask = np.zeros(length, dtype=bool)
    if array.size:
        mask[array] = True
    return mask


def batched_overlap_counts(
    views: Sequence[CoverageView], mask: np.ndarray
) -> np.ndarray:
    """``|C_i ∩ mask|`` for every view, as one fused kernel.

    Equivalent to ``[v.overlap_with(mask) for v in views]`` — ids beyond the
    mask length count as uncovered, matching :meth:`CoverageView.overlap_with`
    — but the id arrays are concatenated once and probed with a single mask
    gather, and the per-view counts fall out of a segmented prefix sum, so
    there is no Python (and no per-view numpy dispatch) in the loop.
    """
    n = len(views)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.fromiter((view.count for view in views), dtype=np.int64, count=n)
    if not int(sizes.sum()):
        return np.zeros(n, dtype=np.int64)
    all_ids = np.concatenate([view.ids for view in views])
    if int(all_ids.max()) < mask.size:
        covered = mask[all_ids]
    else:
        inside = all_ids < mask.size
        covered = inside.copy()
        covered[inside] = mask[all_ids[inside]]
    # Segmented reduction: empty views contribute no boundary (reduceat would
    # misread a repeated index), so reduce over the non-empty segments only.
    ends = np.cumsum(sizes)
    nonempty = sizes > 0
    counts = np.zeros(n, dtype=np.int64)
    counts[nonempty] = np.add.reduceat(
        covered, (ends - sizes)[nonempty], dtype=np.int64
    )
    return counts


def batched_new_counts(
    views: Sequence[CoverageView], mask: np.ndarray
) -> np.ndarray:
    """``|C_i \\ mask|`` for every view (the batched ``new_count`` kernel).

    Equivalent to ``[v.new_ids_given(mask).size for v in views]`` without
    materializing any difference arrays.
    """
    n = len(views)
    sizes = np.fromiter((view.count for view in views), dtype=np.int64, count=n)
    return sizes - batched_overlap_counts(views, mask)
