"""The corpus index (Section 3.1, Figure 6).

The index is the merge of all per-sentence derivation sketches. Each node
represents one heuristic expression and stores

* the number of sentences satisfying it (its coverage count),
* an inverted list of those sentence ids,
* links to its children (one-more-derivation-step specializations present in
  the index) and parents (generalizations present in the index).

Construction is linear in the number of sentences because the sketch of each
sentence is bounded (``max_depth`` derivation steps). Sketches can be built for
corpus chunks independently and merged, mirroring the parallel construction
the paper describes; :meth:`CorpusIndex.merge` implements the merge step and
applies the same pruning as a direct build, so chunked and monolithic
construction produce identical indexes (as long as chunks are built without
per-chunk pruning — see :meth:`CorpusIndex.merge`).

Coverage storage is columnar: while an index is under construction each node
accumulates a plain Python set, but once built the index is *sealed* — every
node's ids are interned into a shared :class:`~repro.index.coverage.CoverageStore`
as an immutable sorted ``int32`` array, and a sentence→keys inverted map is
derived. Sealing makes :meth:`coverage` / :meth:`heuristic` zero-copy and
:meth:`top_by_overlap` proportional to the *query* coverage (it walks the
inverted map) instead of the whole index.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..errors import CorpusIndexError
from ..grammars.base import Expression, HeuristicGrammar
from ..rules.heuristic import LabelingHeuristic
from ..text.corpus import Corpus
from .arena import ArenaConfig, CoverageArena
from .coverage import CoverageStore, CoverageView
from .nodetable import NodeTable, lexicographic_ranks
from .sketch import DerivationSketch, SketchKey, build_sketch

ROOT_KEY: SketchKey = ("*", "*")
"""The virtual root node '*' matching every sentence (Algorithm 2, line 1)."""

CoverageIds = Union[Set[int], CoverageView]
"""A node's inverted list: a mutable set while building, a view once sealed."""


def _build_chunk_index(job) -> "CorpusIndex":
    """Worker for :meth:`CorpusIndex.build_parallel`: one unpruned chunk index.

    Module-level so multiprocessing can pickle it. The shard is a plain
    sentence list (``Corpus`` requires 0-based consecutive ids, which shards
    don't have); sentence ids stay global, so shard indexes merge without
    renumbering.
    """
    sentences, grammars, max_depth = job
    index = CorpusIndex(grammars, max_depth=max_depth, min_coverage=1)
    for sentence in sentences:
        index.add_sketch(build_sketch(sentence, grammars, max_depth))
    # Left unlinked and unsealed on purpose: the driver's merge loop re-links
    # and seals exactly once at the end, so per-chunk finalization (interning
    # + CSR build) would be thrown-away work.
    return index


def _build_chunk_arena(job) -> Tuple[List[Tuple[SketchKey, int, int]], int]:
    """Worker for the arena-backed :meth:`CorpusIndex.build_parallel` path.

    Sketches one corpus shard, interns every node's coverage into a
    **shard arena** file at the given path, and returns a lightweight payload
    — ``(key, depth, shard slot)`` per node plus the sentence count — instead
    of pickling the whole chunk index back to the driver. The driver merges
    the shard arenas into the final arena by column concatenation with
    offset rebase (see :meth:`CorpusIndex.build_parallel`).
    """
    sentences, grammars, max_depth, shard_path = job
    index = CorpusIndex(grammars, max_depth=max_depth, min_coverage=1)
    for sentence in sentences:
        index.add_sketch(build_sketch(sentence, grammars, max_depth))
    store = CoverageStore(
        backend="arena",
        path=shard_path,
        # Shards are write-only scratch: no query runs against them, so the
        # bitset fast path would be thrown-away work.
        arena_config=ArenaConfig(bitset_cache_bytes=0),
        create=True,
    )
    nodes = list(index.nodes.values())  # root included: the driver unions it
    views = store.intern_many([node.sentence_ids for node in nodes])
    records = [
        (node.key, node.depth, view.slot) for node, view in zip(nodes, views)
    ]
    store.flush()
    store.arena.close()
    return records, index._num_sentences


@dataclass
class IndexNode:
    """One heuristic node of the corpus index.

    Attributes:
        key: ``(grammar name, expression)``.
        depth: Derivation complexity of the expression (1 for unigrams/leaves).
        sentence_ids: Inverted list of covering sentence ids. A plain ``set``
            while the index is being built; an interned
            :class:`~repro.index.coverage.CoverageView` once sealed (both are
            set-likes supporting ``len``/``in``/``&``/``<=``).
        children: Keys of specializations present in the index.
        parents: Keys of generalizations present in the index.
    """

    key: SketchKey
    depth: int
    sentence_ids: CoverageIds = field(default_factory=set)
    children: Set[SketchKey] = field(default_factory=set)
    parents: Set[SketchKey] = field(default_factory=set)

    @property
    def count(self) -> int:
        """Number of sentences satisfying this heuristic."""
        return len(self.sentence_ids)

    @property
    def coverage_view(self) -> Optional[CoverageView]:
        """The interned coverage view (None until the index is sealed)."""
        ids = self.sentence_ids
        return ids if isinstance(ids, CoverageView) else None


class CorpusIndex:
    """Merged derivation-sketch index over a corpus.

    Args:
        grammars: The heuristic grammars indexed. Expressions are only
            interpreted by the grammar that produced them.
        max_depth: Sketch depth bound used at build time.
        min_coverage: Pruning threshold re-applied by :meth:`merge` so chunked
            construction matches a direct :meth:`build`.
        coverage_backend: ``"memory"`` (default) or ``"arena"`` — where the
            interned coverage columns live (see
            :class:`~repro.index.coverage.CoverageStore`).
        arena_config: :class:`~repro.index.arena.ArenaConfig` for the arena
            backend (file path, bitset cache budget).
    """

    def __init__(
        self,
        grammars: Sequence[HeuristicGrammar],
        max_depth: int = 10,
        min_coverage: int = 1,
        coverage_backend: str = "memory",
        arena_config: Optional[ArenaConfig] = None,
    ) -> None:
        if not grammars:
            raise CorpusIndexError("at least one grammar is required")
        names = [g.name for g in grammars]
        if len(set(names)) != len(names):
            raise CorpusIndexError("grammar names must be unique")
        self.grammars: Dict[str, HeuristicGrammar] = {g.name: g for g in grammars}
        self.max_depth = max_depth
        self.min_coverage = min_coverage
        self.coverage_backend = coverage_backend
        self.arena_config = arena_config
        # create=True: a build always starts from an empty arena, truncating
        # any stale file at the path (reattach is the checkpoint-restore
        # path, via CoverageStore.from_state, never a fresh build).
        self.store = CoverageStore(
            backend=coverage_backend, arena_config=arena_config, create=True
        )
        self.nodes: Dict[SketchKey, IndexNode] = {
            ROOT_KEY: IndexNode(key=ROOT_KEY, depth=0)
        }
        self._num_sentences = 0
        self._built = False
        self._sealed = False
        # CSR-layout inverted map (sentence id → node indices), built at seal
        # time: _inv_nodes[_inv_starts[sid]:_inv_starts[sid+1]] are the
        # positions (into _key_list) of the keys covering ``sid``.
        self._key_list: List[SketchKey] = []
        self._key_reprs: List[str] = []
        self._key_positions: Dict[SketchKey, int] = {}
        self._node_counts = np.empty(0, dtype=np.int64)
        self._inv_nodes = np.empty(0, dtype=np.int32)
        self._inv_starts = np.empty(0, dtype=np.int64)
        # Interval-encoded node table built at seal time: stable tie-break
        # ranks (count desc, repr asc), the rank→position permutation, the
        # pre/post-window table over the non-root DAG, and the memoized
        # top_by_coverage orders (keyed by grammar filter).
        self._node_ranks = np.empty(0, dtype=np.int64)
        self._rank_order = np.empty(0, dtype=np.int64)
        self._node_table: Optional[NodeTable] = None
        self._coverage_order_cache: Dict[Optional[str], List[SketchKey]] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        corpus: Corpus,
        grammars: Sequence[HeuristicGrammar],
        max_depth: int = 10,
        min_coverage: int = 1,
        coverage_backend: str = "memory",
        arena_config: Optional[ArenaConfig] = None,
    ) -> "CorpusIndex":
        """Build the index for ``corpus`` by merging per-sentence sketches."""
        index = cls(
            grammars,
            max_depth=max_depth,
            min_coverage=min_coverage,
            coverage_backend=coverage_backend,
            arena_config=arena_config,
        )
        for sentence in corpus:
            sketch = build_sketch(sentence, grammars, max_depth)
            index.add_sketch(sketch)
        index.link_structure()
        if min_coverage > 1:
            index.prune(min_coverage)
        index._built = True
        index.seal()
        return index

    def add_sketch(self, sketch: DerivationSketch) -> None:
        """Merge one sentence's derivation sketch into the index."""
        if self._sealed:
            self._unseal()
        self._num_sentences += 1
        root = self.nodes[ROOT_KEY]
        root.sentence_ids.add(sketch.sentence_id)
        for key, depth in sketch.entries.items():
            node = self.nodes.get(key)
            if node is None:
                node = IndexNode(key=key, depth=depth)
                self.nodes[key] = node
            node.sentence_ids.add(sketch.sentence_id)

    @classmethod
    def build_parallel(
        cls,
        corpus: Corpus,
        grammars: Sequence[HeuristicGrammar],
        max_depth: int = 10,
        min_coverage: int = 1,
        num_chunks: int = 4,
        coverage_backend: str = "memory",
        arena_config: Optional[ArenaConfig] = None,
    ) -> "CorpusIndex":
        """Build the index over ``num_chunks`` corpus shards in parallel.

        Each shard is sketched and merged into a chunk index by a worker
        process (``min_coverage=1``, i.e. unpruned — per-chunk pruning would
        lose keys that only clear the threshold globally; see :meth:`merge`),
        the chunk indexes are merged on the driver, and the final pruning is
        applied once, so the result is identical to a serial :meth:`build`.

        With ``coverage_backend="arena"`` each worker seals its shard into a
        temporary **shard arena** and returns only ``(key, depth, slot)``
        records; the driver folds the shard arenas into the final arena by
        column concatenation with offset rebase (keys unique to one shard,
        the common case for deep keys, are bulk-copied as one contiguous
        segment per shard) and interns the union coverage for keys that
        appear in several shards. The shard files are deleted afterwards.

        Falls back to a serial build when ``num_chunks <= 1``, the corpus is
        smaller than the chunk count, or no worker pool can be started (e.g.
        sandboxed environments without fork support).
        """
        sentences = list(corpus)
        if num_chunks <= 1 or len(sentences) < max(2, num_chunks):
            return cls.build(
                corpus,
                grammars,
                max_depth=max_depth,
                min_coverage=min_coverage,
                coverage_backend=coverage_backend,
                arena_config=arena_config,
            )
        bounds = np.linspace(0, len(sentences), num_chunks + 1).astype(int)
        shards = [
            sentences[bounds[i]:bounds[i + 1]]
            for i in range(num_chunks)
            if bounds[i] < bounds[i + 1]
        ]
        if coverage_backend == "arena":
            return cls._build_parallel_arena(
                shards,
                grammars,
                max_depth=max_depth,
                min_coverage=min_coverage,
                arena_config=arena_config,
            )
        jobs = [(shard, list(grammars), max_depth) for shard in shards]
        try:
            import multiprocessing

            with multiprocessing.Pool(processes=min(len(jobs), os.cpu_count() or 1)) as pool:
                chunk_indexes = pool.map(_build_chunk_index, jobs)
        except (ImportError, OSError, PermissionError):
            chunk_indexes = [_build_chunk_index(job) for job in jobs]
        merged = chunk_indexes[0]
        for chunk in chunk_indexes[1:]:
            merged.merge(chunk, finalize=False)
        merged.link_structure()
        merged.min_coverage = min_coverage
        if min_coverage > 1:
            merged.prune(min_coverage)
        merged._built = True
        merged.seal()
        return merged

    @classmethod
    def _build_parallel_arena(
        cls,
        shards: List[List],
        grammars: Sequence[HeuristicGrammar],
        max_depth: int,
        min_coverage: int,
        arena_config: Optional[ArenaConfig],
    ) -> "CorpusIndex":
        """Arena-backed chunked build: shard arenas → one merged arena.

        Shard sentence-id ranges are consecutive and increasing (the shards
        are corpus slices), so the union of a key's per-shard coverages is
        the plain concatenation of its shard slices in shard order — already
        sorted, no re-sort needed.
        """
        scratch = tempfile.mkdtemp(prefix="repro-arena-shards-")
        shard_arenas: List[CoverageArena] = []
        try:
            jobs = [
                (shard, list(grammars), max_depth,
                 os.path.join(scratch, f"shard{position}.arena"))
                for position, shard in enumerate(shards)
            ]
            try:
                import multiprocessing

                with multiprocessing.Pool(
                    processes=min(len(jobs), os.cpu_count() or 1)
                ) as pool:
                    payloads = pool.map(_build_chunk_arena, jobs)
            except (ImportError, OSError, PermissionError):
                payloads = [_build_chunk_arena(job) for job in jobs]

            index = cls(
                grammars,
                max_depth=max_depth,
                min_coverage=min_coverage,
                coverage_backend="arena",
                arena_config=arena_config,
            )
            store = index.store
            shard_arenas = [CoverageArena.open(job[3]) for job in jobs]
            total_sentences = sum(count for _, count in payloads)
            store.ensure_universe(total_sentences)

            # key → per-shard occurrences, in shard order.
            occurrences: Dict[SketchKey, List[Tuple[int, int]]] = {}
            depths: Dict[SketchKey, int] = {}
            for shard_position, (records, _) in enumerate(payloads):
                for key, depth, slot in records:
                    occurrences.setdefault(key, []).append((shard_position, slot))
                    depths[key] = depth

            views: Dict[SketchKey, CoverageView] = {}
            # Keys owned by exactly one shard: copy each shard's column slices
            # into the final arena as one contiguous segment (concatenation +
            # offset rebase) via a single bulk append per shard.
            for shard_position, arena in enumerate(shard_arenas):
                owned = [
                    (key, occ[0][1])
                    for key, occ in occurrences.items()
                    if len(occ) == 1 and occ[0][0] == shard_position
                ]
                owned_views = store.intern_many(
                    [arena.values_slice(slot) for _, slot in owned]
                )
                for (key, _), view in zip(owned, owned_views):
                    views[key] = view
            # Keys spanning shards (the root always does): concatenate the
            # shard slices — disjoint, increasing id ranges — and intern.
            spanning = [
                key for key, occ in occurrences.items() if len(occ) > 1
            ]
            spanning_views = store.intern_many(
                [
                    np.concatenate(
                        [
                            shard_arenas[shard].values_slice(slot)
                            for shard, slot in occurrences[key]
                        ]
                    )
                    for key in spanning
                ]
            )
            views.update(zip(spanning, spanning_views))

            root = index.nodes[ROOT_KEY]
            root.sentence_ids = views.get(ROOT_KEY, store.empty)
            for key, view in views.items():
                if key == ROOT_KEY:
                    continue
                index.nodes[key] = IndexNode(
                    key=key, depth=depths[key], sentence_ids=view
                )
            index._num_sentences = total_sentences
            index.link_structure()
            if min_coverage > 1:
                # Pruned nodes leave their slots behind as dead segments in
                # the arena file (append-only layout); the columns the index
                # actually references stay correct.
                index.prune(min_coverage)
            index._built = True
            index._sealed = True
            index._rebuild_inverted_map()
            store.flush()
            return index
        finally:
            for arena in shard_arenas:
                arena.close()
            shutil.rmtree(scratch, ignore_errors=True)

    def merge(self, other: "CorpusIndex", finalize: bool = True) -> "CorpusIndex":
        """Merge another chunk index into this one (parallel construction).

        The merged index re-applies ``min_coverage`` pruning and is marked
        built and sealed, so a chunked build is indistinguishable from a
        direct :meth:`build` over the concatenated corpus **provided the
        chunks themselves were not pruned** (build them with
        ``min_coverage=1`` or drive :meth:`add_sketch` directly, as the
        tests do). A key below the threshold in every chunk but above it
        globally cannot be recovered once per-chunk pruning dropped it.
        Interned arrays make the merge cheap: per node it is one
        sorted-array union instead of re-hashing every sentence id.

        Args:
            other: The chunk index to union in.
            finalize: Re-link, prune, and seal after merging (the default).
                A caller folding many chunks together — see
                :meth:`build_parallel` — passes ``False`` for the
                intermediate merges and finalizes once at the end, since
                per-merge linking and sealing over the growing index is
                thrown-away work; the merged index is left unlinked and
                unsealed until the caller finalizes it.
        """
        if set(self.grammars) != set(other.grammars):
            raise CorpusIndexError("cannot merge indexes over different grammars")
        if self._sealed:
            self._unseal()
        for key, node in other.nodes.items():
            mine = self.nodes.get(key)
            theirs = node.sentence_ids
            if mine is None:
                self.nodes[key] = IndexNode(
                    key=key, depth=node.depth, sentence_ids=set(theirs)
                )
            else:
                mine.sentence_ids.update(theirs)
        self._num_sentences += other._num_sentences
        self.min_coverage = max(self.min_coverage, other.min_coverage)
        if not finalize:
            self._built = False
            return self
        self.link_structure()
        if self.min_coverage > 1:
            self.prune(self.min_coverage)
        self._built = True
        self.seal()
        return self

    def link_structure(self) -> None:
        """(Re)compute parent/child links via grammar generalizations."""
        for node in self.nodes.values():
            node.children.clear()
            node.parents.clear()
        for key, node in self.nodes.items():
            if key == ROOT_KEY:
                continue
            grammar_name, expression = key
            grammar = self.grammars[grammar_name]
            parent_keys = [
                (grammar_name, parent)
                for parent in grammar.generalizations(expression)
                if (grammar_name, parent) in self.nodes
            ]
            if not parent_keys:
                parent_keys = [ROOT_KEY]
            for parent_key in parent_keys:
                node.parents.add(parent_key)
                self.nodes[parent_key].children.add(key)

    def prune(self, min_coverage: int) -> int:
        """Drop nodes covering fewer than ``min_coverage`` sentences.

        Returns the number of nodes removed. Children of removed nodes are
        re-linked to the removed node's parents so the DAG stays connected.
        """
        to_remove = [
            key
            for key, node in self.nodes.items()
            if key != ROOT_KEY and node.count < min_coverage
        ]
        for key in to_remove:
            node = self.nodes.pop(key)
            for parent_key in node.parents:
                parent = self.nodes.get(parent_key)
                if parent is not None:
                    parent.children.discard(key)
                    for child_key in node.children:
                        if child_key in self.nodes:
                            parent.children.add(child_key)
                            self.nodes[child_key].parents.add(parent_key)
            for child_key in node.children:
                child = self.nodes.get(child_key)
                if child is not None:
                    child.parents.discard(key)
                    if not child.parents:
                        child.parents.add(ROOT_KEY)
                        self.nodes[ROOT_KEY].children.add(child_key)
        if self._sealed and to_remove:
            self._rebuild_inverted_map()
        return len(to_remove)

    # ------------------------------------------------------------------- seal
    @property
    def sealed(self) -> bool:
        """True once node coverages are interned and the inverted map exists."""
        return self._sealed

    def seal(self) -> None:
        """Intern every node's coverage and build the sentence→keys map.

        Idempotent. Called automatically at the end of :meth:`build` and
        :meth:`merge`; call it manually after driving :meth:`add_sketch` /
        :meth:`link_structure` by hand to enable the columnar fast paths.
        """
        if self._sealed:
            return
        store = self.store
        root = self.nodes[ROOT_KEY]
        max_id = -1
        if len(root.sentence_ids):
            max_id = max(int(i) for i in root.sentence_ids)
        store.ensure_universe(max(self._num_sentences, max_id + 1))
        # One bulk intern: on the arena backend this appends every new
        # coverage as a single contiguous values segment (one file write)
        # instead of one write per node.
        pending = [
            node
            for node in self.nodes.values()
            if not isinstance(node.sentence_ids, CoverageView)
        ]
        views = store.intern_many([node.sentence_ids for node in pending])
        for node, view in zip(pending, views):
            node.sentence_ids = view
        store.flush()
        self._sealed = True
        self._rebuild_inverted_map()

    def _unseal(self) -> None:
        """Return nodes to mutable sets so construction may continue."""
        for node in self.nodes.values():
            if isinstance(node.sentence_ids, CoverageView):
                node.sentence_ids = set(node.sentence_ids)
        self._sealed = False
        self._key_list = []
        self._key_reprs = []
        self._key_positions = {}
        self._node_counts = np.empty(0, dtype=np.int64)
        self._inv_nodes = np.empty(0, dtype=np.int32)
        self._inv_starts = np.empty(0, dtype=np.int64)
        self._node_ranks = np.empty(0, dtype=np.int64)
        self._rank_order = np.empty(0, dtype=np.int64)
        self._node_table = None
        self._coverage_order_cache = {}

    def _rebuild_inverted_map(self) -> None:
        """Vectorized CSR construction of the sentence→keys inverted map."""
        keys = [key for key in self.nodes if key != ROOT_KEY]
        self._key_list = keys
        self._key_reprs = [repr(key) for key in keys]
        self._key_positions = {key: position for position, key in enumerate(keys)}
        self._node_counts = np.array(
            [len(self.nodes[key].sentence_ids) for key in keys], dtype=np.int64
        )
        universe = max(self.store.universe_size, self._num_sentences, 1)
        if not keys or not self._node_counts.sum():
            self._inv_nodes = np.empty(0, dtype=np.int32)
            self._inv_starts = np.zeros(universe + 1, dtype=np.int64)
            self._rebuild_node_table()
            return
        id_chunks: List[np.ndarray] = []
        node_chunks: List[np.ndarray] = []
        for position, key in enumerate(keys):
            ids = self.nodes[key].sentence_ids
            ids_array = ids.ids if isinstance(ids, CoverageView) else np.fromiter(
                ids, dtype=np.int32, count=len(ids)
            )
            if not ids_array.size:
                continue
            id_chunks.append(ids_array)
            node_chunks.append(np.full(ids_array.size, position, dtype=np.int32))
        all_ids = np.concatenate(id_chunks)
        all_nodes = np.concatenate(node_chunks)
        order = np.argsort(all_ids, kind="stable")
        sorted_ids = all_ids[order]
        self._inv_nodes = all_nodes[order]
        self._inv_starts = np.searchsorted(
            sorted_ids, np.arange(universe + 1), side="left"
        ).astype(np.int64)
        self._rebuild_node_table()

    def _rebuild_node_table(self) -> None:
        """Build the interval-encoded node table over the sealed index.

        Positions follow ``_key_list`` (the root is excluded; its children
        become the table's forest roots). The stable rank column reproduces
        the ``(count desc, repr asc)`` tie-break order once, vectorized, so
        every later ranking is integer arithmetic over the columns.
        """
        keys = self._key_list
        self._coverage_order_cache = {}
        self._node_ranks = lexicographic_ranks(self._node_counts, self._key_reprs)
        self._rank_order = np.argsort(self._node_ranks, kind="stable")
        positions = self._key_positions
        edges = [
            (positions[parent_key], position)
            for position, key in enumerate(keys)
            for parent_key in self.nodes[key].parents
            if parent_key != ROOT_KEY
        ]
        store_slots = np.fromiter(
            (
                view.slot if (view := self.nodes[key].coverage_view) is not None
                and view.slot is not None else -1
                for key in keys
            ),
            dtype=np.int64,
            count=len(keys),
        )
        depths = np.fromiter(
            (self.nodes[key].depth for key in keys),
            dtype=np.int64,
            count=len(keys),
        )
        self._node_table = NodeTable.build(
            len(keys),
            edges,
            counts=self._node_counts,
            ranks=self._node_ranks,
            store_slots=store_slots,
            depths=depths,
        )
        self._seal_columns()

    def _seal_columns(self) -> None:
        """Freeze the CSR/rank columns, matching the NodeTable contract.

        Sealed-index columns are shared by reference (coverage kernels,
        tenant pools, checkpoint bundles); ``write=False`` turns any stray
        mutation into an immediate ``ValueError`` instead of silent
        cross-reader corruption. ``_unseal`` replaces the arrays wholesale,
        so construction never needs to flip them back.
        """
        for column in (
            self._node_counts, self._inv_nodes, self._inv_starts,
            self._node_ranks, self._rank_order,
        ):
            column.setflags(write=False)

    @property
    def node_table(self) -> Optional[NodeTable]:
        """The interval-encoded node table (None until sealed)."""
        if not self._sealed:
            return None
        if self._node_table is None:
            self._rebuild_node_table()
        return self._node_table

    def node_position(self, key: SketchKey) -> int:
        """Position of ``key`` in the node table / ``_key_list`` order."""
        try:
            return self._key_positions[key]
        except KeyError:
            raise CorpusIndexError(f"no sealed node table row for key {key!r}")

    def keys_covering(self, sentence_id: int) -> List[SketchKey]:
        """All non-root keys whose coverage includes ``sentence_id``."""
        if not self._sealed:
            self.seal()
        sid = int(sentence_id)
        if sid < 0 or sid + 1 >= self._inv_starts.size:
            return []
        start, stop = self._inv_starts[sid], self._inv_starts[sid + 1]
        return [self._key_list[i] for i in self._inv_nodes[start:stop]]

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, key: SketchKey) -> bool:
        return key in self.nodes

    @property
    def num_sentences(self) -> int:
        """Number of sentences merged into the index."""
        return self._num_sentences

    def node(self, key: SketchKey) -> IndexNode:
        """The node for ``key``; raises :class:`CorpusIndexError` if absent."""
        node = self.nodes.get(key)
        if node is None:
            raise CorpusIndexError(f"no index node for key {key!r}")
        return node

    def coverage(self, key: SketchKey) -> CoverageIds:
        """Sentence ids covered by the heuristic at ``key``.

        Sealed indexes hand out the interned :class:`CoverageView` (no copy);
        unsealed indexes return a defensive set copy as before.
        """
        ids = self.node(key).sentence_ids
        if isinstance(ids, CoverageView):
            return ids
        return set(ids)

    def coverage_view(self, key: SketchKey) -> CoverageView:
        """The interned coverage view for ``key`` (seals the index if needed)."""
        if not self._sealed:
            self.seal()
        ids = self.node(key).sentence_ids
        assert isinstance(ids, CoverageView)
        return ids

    def count(self, key: SketchKey) -> int:
        """Coverage count for ``key`` (0 if absent)."""
        node = self.nodes.get(key)
        return node.count if node is not None else 0

    def overlap_count(self, key: SketchKey, mask: np.ndarray) -> int:
        """``|coverage(key) ∩ mask|`` for a boolean membership mask."""
        ids = self.node(key).sentence_ids
        if isinstance(ids, CoverageView):
            return ids.overlap_with(mask)
        return sum(1 for sid in ids if sid < mask.size and mask[sid])

    def children_of(self, key: SketchKey) -> List[SketchKey]:
        """Keys of the specializations of ``key`` present in the index."""
        return sorted(self.node(key).children, key=repr)

    def parents_of(self, key: SketchKey) -> List[SketchKey]:
        """Keys of the generalizations of ``key`` present in the index."""
        return sorted(self.node(key).parents, key=repr)

    def root_children(self) -> List[SketchKey]:
        """Keys directly below the virtual root '*'."""
        return self.children_of(ROOT_KEY)

    def keys(self) -> List[SketchKey]:
        """All non-root keys."""
        return [key for key in self.nodes if key != ROOT_KEY]

    # --------------------------------------------------------------- lookups
    def key_for(self, grammar_name: str, expression: Expression) -> SketchKey:
        """Build an index key, validating the grammar name."""
        if grammar_name not in self.grammars:
            raise CorpusIndexError(f"unknown grammar {grammar_name!r}")
        return (grammar_name, expression)

    def heuristic(self, key: SketchKey) -> LabelingHeuristic:
        """Materialize the :class:`LabelingHeuristic` for an index node.

        On a sealed index the heuristic shares the node's interned coverage
        view — materialization is O(1) instead of copying the id set.
        """
        if key == ROOT_KEY:
            raise CorpusIndexError("the virtual root is not a labeling heuristic")
        grammar_name, expression = key
        grammar = self.grammars.get(grammar_name)
        if grammar is None:
            raise CorpusIndexError(f"unknown grammar {grammar_name!r}")
        ids = self.node(key).sentence_ids
        coverage = ids if isinstance(ids, CoverageView) else frozenset(ids)
        return LabelingHeuristic(
            grammar=grammar,
            expression=expression,
            coverage_ids=coverage,
        )

    def lookup(self, grammar_name: str, expression: Expression) -> Optional[IndexNode]:
        """The node for (grammar, expression), or None if not indexed."""
        return self.nodes.get((grammar_name, expression))

    def coverage_of_expression(
        self, grammar_name: str, expression: Expression, corpus: Optional[Corpus] = None
    ) -> CoverageIds:
        """Coverage of an expression, falling back to a corpus scan if unindexed."""
        node = self.lookup(grammar_name, expression)
        if node is not None:
            ids = node.sentence_ids
            return ids if isinstance(ids, CoverageView) else set(ids)
        if corpus is None:
            return set()
        grammar = self.grammars.get(grammar_name)
        if grammar is None:
            raise CorpusIndexError(f"unknown grammar {grammar_name!r}")
        return set(grammar.coverage(expression, corpus))

    # -------------------------------------------------------------- rankings
    def top_by_coverage(
        self, limit: int, grammar_name: Optional[str] = None
    ) -> List[SketchKey]:
        """The ``limit`` keys with the largest coverage counts.

        Sealed indexes answer from the memoized rank order (computed once at
        seal time, invalidated on merge/unseal) instead of re-sorting every
        key per call; the grammar-filtered orders are cached on first use.
        """
        if limit <= 0:
            return []
        if self._sealed:
            ranked = self._coverage_order_cache.get(grammar_name)
            if ranked is None:
                if grammar_name is None:
                    order = self._rank_order
                else:
                    grammar_mask = np.fromiter(
                        (key[0] == grammar_name for key in self._key_list),
                        dtype=bool,
                        count=len(self._key_list),
                    )
                    order = self._rank_order[grammar_mask[self._rank_order]]
                ranked = [self._key_list[i] for i in order.tolist()]
                self._coverage_order_cache[grammar_name] = ranked
            return ranked[:limit]
        keys: Iterable[SketchKey] = (
            key for key in self.keys()
            if grammar_name is None or key[0] == grammar_name
        )
        ranked = sorted(keys, key=lambda k: (-self.nodes[k].count, repr(k)))
        return ranked[:limit]

    def top_by_overlap(
        self, sentence_ids: Iterable[int], limit: int
    ) -> List[Tuple[SketchKey, int]]:
        """Keys ranked by overlap with ``sentence_ids`` (ties by coverage).

        On a sealed index this is one fused kernel with no Python in the
        inner loop: the query's inverted-map windows are gathered with a
        ``repeat``/``arange`` expansion, overlaps come from ``np.bincount``,
        and the ``(overlap desc, count desc, repr asc)`` ranking collapses to
        ``argpartition`` over a single integer composite of the overlap and
        the precomputed lexicographic rank column.
        """
        if limit <= 0:
            return []
        if self._sealed:
            starts = self._inv_starts
            sids = np.fromiter((int(s) for s in sentence_ids), dtype=np.int64)
            if sids.size:
                sids = sids[(sids >= 0) & (sids + 1 < starts.size)]
            if not sids.size:
                return []
            lo = starts[sids]
            hi = starts[sids + 1]
            lens = hi - lo
            total = int(lens.sum())
            if not total:
                return []
            gather = np.repeat(hi - np.cumsum(lens), lens) + np.arange(total)
            num_keys = len(self._key_list)
            overlaps = np.bincount(self._inv_nodes[gather], minlength=num_keys)
            nonzero = np.flatnonzero(overlaps)
            # Composite maximization key: overlap major, stable rank minor.
            # ranks are unique in [0, num_keys), so overlap*num_keys - rank
            # totally orders the nodes exactly like the legacy comparator.
            composite = (
                overlaps[nonzero].astype(np.int64) * num_keys
                - self._node_ranks[nonzero]
            )
            if nonzero.size > limit:
                top = np.argpartition(-composite, limit - 1)[:limit]
                nonzero = nonzero[top]
                composite = composite[top]
            order = np.argsort(-composite)
            ranked = nonzero[order]
            return [
                (self._key_list[i], int(overlaps[i])) for i in ranked.tolist()
            ]
        query = set(sentence_ids)
        scored = []
        for key in self.keys():
            node = self.nodes[key]
            overlap = len(node.sentence_ids & query)
            if overlap > 0:
                scored.append((key, overlap))
        scored.sort(key=lambda item: (-item[1], -self.nodes[item[0]].count, repr(item[0])))
        return scored[:limit]

    # -------------------------------------------------------- state protocol
    def to_state(self, bundle, prefix: str = "index/") -> Dict[str, object]:
        """Serialize the sealed index: store columns, nodes, and the CSR map.

        Layout:

        * the :class:`CoverageStore` contributes the interned coverage
          columns (values + offsets, see :meth:`CoverageStore.to_state`);
        * each node is ``{"g": grammar, "e": rendered expression, "d": depth,
          "s": store slot}`` in insertion order (the root first, under the
          reserved grammar name ``"*"``) — parent/child links are re-derived
          by :meth:`link_structure`, which is deterministic given the nodes;
        * the sentence→keys CSR inverted map (``inv_nodes``/``inv_starts``/
          ``node_counts``) is stored verbatim so :meth:`from_state` restores
          the sealed fast paths without a rebuild pass;
        * the interval-encoded node table (rank column + every
          :class:`~repro.index.nodetable.NodeTable` column) is stored
          verbatim, so resume reuses the exact seal-time numbering and stays
          question-identical without recomputing the DFS.
        """
        if not self._sealed:
            self.seal()
        store_state = self.store.to_state(bundle, prefix=prefix + "store/")
        slots = {
            id(view): position
            for position, view in enumerate(self.store.interned_views())
        }
        nodes = []
        for key, node in self.nodes.items():
            grammar_name, expression = key
            rendered = (
                "*" if key == ROOT_KEY
                else self.grammars[grammar_name].render(expression)
            )
            view = node.coverage_view
            nodes.append(
                {
                    "g": grammar_name,
                    "e": rendered,
                    "d": node.depth,
                    "s": slots[id(view)],
                }
            )
        if self._node_table is None:
            self._rebuild_node_table()
        return {
            "max_depth": self.max_depth,
            "min_coverage": self.min_coverage,
            "num_sentences": self._num_sentences,
            "store": store_state,
            "nodes": nodes,
            "inv_nodes": bundle.put(prefix + "inv_nodes", self._inv_nodes),
            "inv_starts": bundle.put(prefix + "inv_starts", self._inv_starts),
            "node_counts": bundle.put(prefix + "node_counts", self._node_counts),
            "node_ranks": bundle.put(prefix + "node_ranks", self._node_ranks),
            "node_table": self._node_table.to_state(bundle, prefix + "table/"),
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        bundle,
        grammars: Sequence[HeuristicGrammar],
        arena_config: Optional[ArenaConfig] = None,
    ) -> "CorpusIndex":
        """Rebuild a sealed index from :meth:`to_state` output.

        Args:
            state: The serialized snapshot.
            bundle: Array source (:class:`repro.engine.state.ArrayBundle`).
            grammars: Grammar instances matching the serialized grammar names
                (built by the engine from its config before the index loads).
            arena_config: Runtime arena tuning for arena-backed stores (the
                arena path itself comes from the state's arena reference).
        """
        index = cls(
            grammars,
            max_depth=int(state["max_depth"]),
            min_coverage=int(state["min_coverage"]),
        )
        index.store = CoverageStore.from_state(
            state["store"], bundle, arena_config=arena_config
        )
        index.coverage_backend = index.store.backend
        index.arena_config = arena_config if index.store.backend == "arena" else None
        views = index.store.interned_views()
        index._num_sentences = int(state["num_sentences"])
        for record in state["nodes"]:
            grammar_name = record["g"]
            view = views[int(record["s"])]
            if grammar_name == "*":
                index.nodes[ROOT_KEY].sentence_ids = view
                continue
            grammar = index.grammars.get(grammar_name)
            if grammar is None:
                raise CorpusIndexError(
                    f"checkpoint references unknown grammar {grammar_name!r}"
                )
            key = (grammar_name, grammar.parse(record["e"]))
            index.nodes[key] = IndexNode(
                key=key, depth=int(record["d"]), sentence_ids=view
            )
        index.link_structure()
        index._built = True
        index._sealed = True
        index._key_list = [key for key in index.nodes if key != ROOT_KEY]
        index._key_reprs = [repr(key) for key in index._key_list]
        index._key_positions = {
            key: position for position, key in enumerate(index._key_list)
        }
        index._node_counts = np.asarray(
            bundle.get(state["node_counts"]), dtype=np.int64
        )
        index._inv_nodes = np.asarray(bundle.get(state["inv_nodes"]), dtype=np.int32)
        index._inv_starts = np.asarray(bundle.get(state["inv_starts"]), dtype=np.int64)
        if "node_table" in state:
            index._node_ranks = np.asarray(
                bundle.get(state["node_ranks"]), dtype=np.int64
            )
            index._rank_order = np.argsort(index._node_ranks, kind="stable")
            index._node_table = NodeTable.from_state(state["node_table"], bundle)
            index._seal_columns()
        else:
            # Pre-node-table checkpoint: derive the columns from the restored
            # graph (deterministic, so resume behaviour is unchanged).
            index._rebuild_node_table()
        return index

    def stats(self) -> Dict[str, float]:
        """Summary statistics (used by the efficiency bench)."""
        counts = np.array(
            [node.count for key, node in self.nodes.items() if key != ROOT_KEY],
            dtype=np.int64,
        )
        stats = {
            "num_nodes": float(len(self.nodes) - 1),
            "num_sentences": float(self._num_sentences),
            "mean_coverage": float(counts.mean()) if counts.size else 0.0,
            "max_coverage": float(counts.max()) if counts.size else 0.0,
        }
        if self._sealed:
            stats["interned_coverages"] = float(self.store.num_interned)
            stats["interned_bytes"] = float(self.store.bytes_interned)
        return stats
