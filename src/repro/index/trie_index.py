"""The corpus index (Section 3.1, Figure 6).

The index is the merge of all per-sentence derivation sketches. Each node
represents one heuristic expression and stores

* the number of sentences satisfying it (its coverage count),
* an inverted list of those sentence ids,
* links to its children (one-more-derivation-step specializations present in
  the index) and parents (generalizations present in the index).

Construction is linear in the number of sentences because the sketch of each
sentence is bounded (``max_depth`` derivation steps). Sketches can be built for
corpus chunks independently and merged, mirroring the parallel construction
the paper describes; :meth:`CorpusIndex.merge` implements the merge step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import CorpusIndexError
from ..grammars.base import Expression, HeuristicGrammar
from ..rules.heuristic import LabelingHeuristic
from ..text.corpus import Corpus
from .sketch import DerivationSketch, SketchKey, build_sketch

ROOT_KEY: SketchKey = ("*", "*")
"""The virtual root node '*' matching every sentence (Algorithm 2, line 1)."""


@dataclass
class IndexNode:
    """One heuristic node of the corpus index.

    Attributes:
        key: ``(grammar name, expression)``.
        depth: Derivation complexity of the expression (1 for unigrams/leaves).
        sentence_ids: Inverted list of covering sentence ids.
        children: Keys of specializations present in the index.
        parents: Keys of generalizations present in the index.
    """

    key: SketchKey
    depth: int
    sentence_ids: Set[int] = field(default_factory=set)
    children: Set[SketchKey] = field(default_factory=set)
    parents: Set[SketchKey] = field(default_factory=set)

    @property
    def count(self) -> int:
        """Number of sentences satisfying this heuristic."""
        return len(self.sentence_ids)


class CorpusIndex:
    """Merged derivation-sketch index over a corpus.

    Args:
        grammars: The heuristic grammars indexed. Expressions are only
            interpreted by the grammar that produced them.
        max_depth: Sketch depth bound used at build time.
    """

    def __init__(self, grammars: Sequence[HeuristicGrammar], max_depth: int = 10) -> None:
        if not grammars:
            raise CorpusIndexError("at least one grammar is required")
        names = [g.name for g in grammars]
        if len(set(names)) != len(names):
            raise CorpusIndexError("grammar names must be unique")
        self.grammars: Dict[str, HeuristicGrammar] = {g.name: g for g in grammars}
        self.max_depth = max_depth
        self.nodes: Dict[SketchKey, IndexNode] = {
            ROOT_KEY: IndexNode(key=ROOT_KEY, depth=0)
        }
        self._num_sentences = 0
        self._built = False

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        corpus: Corpus,
        grammars: Sequence[HeuristicGrammar],
        max_depth: int = 10,
        min_coverage: int = 1,
    ) -> "CorpusIndex":
        """Build the index for ``corpus`` by merging per-sentence sketches."""
        index = cls(grammars, max_depth=max_depth)
        for sentence in corpus:
            sketch = build_sketch(sentence, grammars, max_depth)
            index.add_sketch(sketch)
        index.link_structure()
        if min_coverage > 1:
            index.prune(min_coverage)
        index._built = True
        return index

    def add_sketch(self, sketch: DerivationSketch) -> None:
        """Merge one sentence's derivation sketch into the index."""
        self._num_sentences += 1
        root = self.nodes[ROOT_KEY]
        root.sentence_ids.add(sketch.sentence_id)
        for key, depth in sketch.entries.items():
            node = self.nodes.get(key)
            if node is None:
                node = IndexNode(key=key, depth=depth)
                self.nodes[key] = node
            node.sentence_ids.add(sketch.sentence_id)

    def merge(self, other: "CorpusIndex") -> "CorpusIndex":
        """Merge another chunk index into this one (parallel construction)."""
        if set(self.grammars) != set(other.grammars):
            raise CorpusIndexError("cannot merge indexes over different grammars")
        for key, node in other.nodes.items():
            mine = self.nodes.get(key)
            if mine is None:
                self.nodes[key] = IndexNode(
                    key=key, depth=node.depth, sentence_ids=set(node.sentence_ids)
                )
            else:
                mine.sentence_ids.update(node.sentence_ids)
        self._num_sentences += other._num_sentences
        self.link_structure()
        return self

    def link_structure(self) -> None:
        """(Re)compute parent/child links via grammar generalizations."""
        for node in self.nodes.values():
            node.children.clear()
            node.parents.clear()
        for key, node in self.nodes.items():
            if key == ROOT_KEY:
                continue
            grammar_name, expression = key
            grammar = self.grammars[grammar_name]
            parent_keys = [
                (grammar_name, parent)
                for parent in grammar.generalizations(expression)
                if (grammar_name, parent) in self.nodes
            ]
            if not parent_keys:
                parent_keys = [ROOT_KEY]
            for parent_key in parent_keys:
                node.parents.add(parent_key)
                self.nodes[parent_key].children.add(key)

    def prune(self, min_coverage: int) -> int:
        """Drop nodes covering fewer than ``min_coverage`` sentences.

        Returns the number of nodes removed. Children of removed nodes are
        re-linked to the removed node's parents so the DAG stays connected.
        """
        to_remove = [
            key
            for key, node in self.nodes.items()
            if key != ROOT_KEY and node.count < min_coverage
        ]
        for key in to_remove:
            node = self.nodes.pop(key)
            for parent_key in node.parents:
                parent = self.nodes.get(parent_key)
                if parent is not None:
                    parent.children.discard(key)
                    for child_key in node.children:
                        if child_key in self.nodes:
                            parent.children.add(child_key)
                            self.nodes[child_key].parents.add(parent_key)
            for child_key in node.children:
                child = self.nodes.get(child_key)
                if child is not None:
                    child.parents.discard(key)
                    if not child.parents:
                        child.parents.add(ROOT_KEY)
                        self.nodes[ROOT_KEY].children.add(child_key)
        return len(to_remove)

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, key: SketchKey) -> bool:
        return key in self.nodes

    @property
    def num_sentences(self) -> int:
        """Number of sentences merged into the index."""
        return self._num_sentences

    def node(self, key: SketchKey) -> IndexNode:
        """The node for ``key``; raises :class:`CorpusIndexError` if absent."""
        node = self.nodes.get(key)
        if node is None:
            raise CorpusIndexError(f"no index node for key {key!r}")
        return node

    def coverage(self, key: SketchKey) -> Set[int]:
        """Sentence ids covered by the heuristic at ``key``."""
        return set(self.node(key).sentence_ids)

    def count(self, key: SketchKey) -> int:
        """Coverage count for ``key`` (0 if absent)."""
        node = self.nodes.get(key)
        return node.count if node is not None else 0

    def children_of(self, key: SketchKey) -> List[SketchKey]:
        """Keys of the specializations of ``key`` present in the index."""
        return sorted(self.node(key).children, key=repr)

    def parents_of(self, key: SketchKey) -> List[SketchKey]:
        """Keys of the generalizations of ``key`` present in the index."""
        return sorted(self.node(key).parents, key=repr)

    def root_children(self) -> List[SketchKey]:
        """Keys directly below the virtual root '*'."""
        return self.children_of(ROOT_KEY)

    def keys(self) -> List[SketchKey]:
        """All non-root keys."""
        return [key for key in self.nodes if key != ROOT_KEY]

    # --------------------------------------------------------------- lookups
    def key_for(self, grammar_name: str, expression: Expression) -> SketchKey:
        """Build an index key, validating the grammar name."""
        if grammar_name not in self.grammars:
            raise CorpusIndexError(f"unknown grammar {grammar_name!r}")
        return (grammar_name, expression)

    def heuristic(self, key: SketchKey) -> LabelingHeuristic:
        """Materialize the :class:`LabelingHeuristic` for an index node."""
        if key == ROOT_KEY:
            raise CorpusIndexError("the virtual root is not a labeling heuristic")
        grammar_name, expression = key
        grammar = self.grammars.get(grammar_name)
        if grammar is None:
            raise CorpusIndexError(f"unknown grammar {grammar_name!r}")
        return LabelingHeuristic(
            grammar=grammar,
            expression=expression,
            coverage_ids=frozenset(self.node(key).sentence_ids),
        )

    def lookup(self, grammar_name: str, expression: Expression) -> Optional[IndexNode]:
        """The node for (grammar, expression), or None if not indexed."""
        return self.nodes.get((grammar_name, expression))

    def coverage_of_expression(
        self, grammar_name: str, expression: Expression, corpus: Optional[Corpus] = None
    ) -> Set[int]:
        """Coverage of an expression, falling back to a corpus scan if unindexed."""
        node = self.lookup(grammar_name, expression)
        if node is not None:
            return set(node.sentence_ids)
        if corpus is None:
            return set()
        grammar = self.grammars.get(grammar_name)
        if grammar is None:
            raise CorpusIndexError(f"unknown grammar {grammar_name!r}")
        return set(grammar.coverage(expression, corpus))

    # -------------------------------------------------------------- rankings
    def top_by_coverage(
        self, limit: int, grammar_name: Optional[str] = None
    ) -> List[SketchKey]:
        """The ``limit`` keys with the largest coverage counts."""
        keys: Iterable[SketchKey] = (
            key for key in self.keys()
            if grammar_name is None or key[0] == grammar_name
        )
        ranked = sorted(keys, key=lambda k: (-self.nodes[k].count, repr(k)))
        return ranked[:limit]

    def top_by_overlap(
        self, sentence_ids: Set[int], limit: int
    ) -> List[Tuple[SketchKey, int]]:
        """Keys ranked by overlap with ``sentence_ids`` (ties by coverage)."""
        scored = []
        for key in self.keys():
            node = self.nodes[key]
            overlap = len(node.sentence_ids & sentence_ids)
            if overlap > 0:
                scored.append((key, overlap))
        scored.sort(key=lambda item: (-item[1], -self.nodes[item[0]].count, repr(item[0])))
        return scored[:limit]

    def stats(self) -> Dict[str, float]:
        """Summary statistics (used by the efficiency bench)."""
        counts = [node.count for key, node in self.nodes.items() if key != ROOT_KEY]
        return {
            "num_nodes": float(len(self.nodes) - 1),
            "num_sentences": float(self._num_sentences),
            "mean_coverage": (sum(counts) / len(counts)) if counts else 0.0,
            "max_coverage": float(max(counts)) if counts else 0.0,
        }
