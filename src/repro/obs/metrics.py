"""Metric primitives: lock-guarded counters, gauges and log-scale histograms.

Design constraints (the telemetry PR's contract):

* **Free when off.** The process-wide default registry is a
  :class:`NullRegistry` whose instruments are one shared no-op object, so an
  un-instrumented run pays a single attribute call per metric site — nothing
  allocates, nothing locks, nothing formats.
* **Labeled series.** A metric *family* (``darwin_phase_seconds``) fans out
  into labeled children (``{phase="propose"}``); hot paths resolve their
  child once at construction time and then call ``inc``/``observe`` on it.
* **Pull collectors for cold state.** Components whose interesting numbers
  already live in their own fields (cache hit counters, residency bytes,
  per-tenant stats) register a *collector* callback that re-expresses them as
  gauges when a snapshot or exposition is rendered — zero hot-path cost.
  Collectors are held by weak reference so a registry never pins a closed
  pool or a finished engine.
* **Two exporters.** :meth:`MetricsRegistry.snapshot` produces a structured
  JSON-able dict (the ``--metrics-out`` payload and the checkpoint manifest
  block); :meth:`MetricsRegistry.render_prometheus` renders the same state in
  Prometheus text exposition format (the future gateway's ``/metrics`` body).
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

# Fixed log-scale latency buckets: sqrt(2) steps from 1 microsecond to ~24
# seconds (50 bounds), +Inf implicit. Half-octave resolution keeps quantile
# estimates within ~±20% — enough to diff tail latency between bench runs —
# while the bucket array stays one cache line of int64 counts.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * (2.0 ** (i / 2.0)) for i in range(50)
)

_KINDS = ("counter", "gauge", "histogram")


class _NullInstrument:
    """The shared no-op instrument every :class:`NullRegistry` hands out.

    Implements the union of the Counter/Gauge/Histogram child APIs so any
    metric site works unchanged; every method is a plain ``pass``, which is
    what makes the disabled path effectively free.
    """

    __slots__ = ()

    def labels(self, **_labels) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class _Child:
    """One labeled series of a family; shares the family's lock."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class _CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount


class _GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Sequence[float]) -> None:
        self._lock = lock
        self._bounds = list(bounds)
        self._counts = [0] * (len(self._bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left makes each bound an *inclusive* upper edge (Prometheus
        # `le` semantics): observe(b) lands in the bucket whose le == b.
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0.0 with no observations)."""
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            target = q * total
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= target:
                    upper = (
                        self._bounds[index]
                        if index < len(self._bounds)
                        else self._bounds[-1] * 2.0 if self._bounds else float("inf")
                    )
                    lower = self._bounds[index - 1] if index > 0 else 0.0
                    if count == 0:
                        return upper
                    fraction = (target - (cumulative - count)) / count
                    return lower + (upper - lower) * fraction
            return self._bounds[-1] if self._bounds else 0.0


class MetricFamily:
    """A named metric with a fixed label schema, fanning out into children.

    Obtained from :meth:`MetricsRegistry.counter` / ``gauge`` /
    ``histogram``; calling the same constructor again with the same name
    returns the same family (idempotent), while a kind or label-schema
    mismatch raises :class:`~repro.errors.ConfigurationError` loudly instead
    of silently splitting the series.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._buckets = list(buckets if buckets is not None else DEFAULT_TIME_BUCKETS)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        self._default = None if self.label_names else self.labels()

    # ------------------------------------------------------------- children
    def labels(self, **labels: object):
        """The child series for one label assignment (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = _CounterChild(self._lock)
                elif self.kind == "gauge":
                    child = _GaugeChild(self._lock)
                else:
                    child = _HistogramChild(self._lock, self._buckets)
                self._children[key] = child
        return child

    # --------------------------------------------- unlabeled convenience API
    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_unlabeled().dec(amount)

    def set(self, value: float) -> None:
        self._require_unlabeled().set(value)

    def observe(self, value: float) -> None:
        self._require_unlabeled().observe(value)

    @property
    def value(self) -> float:
        return self._require_unlabeled().value

    def _require_unlabeled(self):
        if self._default is None:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                f"resolve a child with .labels(...) first"
            )
        return self._default

    # -------------------------------------------------------------- snapshot
    def snapshot_entry(self) -> Dict[str, object]:
        """This family's JSON-able snapshot block (sorted, stable series order)."""
        series: List[Dict[str, object]] = []
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            labels = dict(zip(self.label_names, key))
            if self.kind == "histogram":
                assert isinstance(child, _HistogramChild)
                cumulative = 0
                buckets: List[List[object]] = []
                for bound, count in zip(child._bounds, child._counts):
                    cumulative += count
                    buckets.append([bound, cumulative])
                buckets.append(["+Inf", child.count])
                mean = child.sum / child.count if child.count else 0.0
                series.append({
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "mean": mean,
                    "p50": child.quantile(0.5),
                    "p95": child.quantile(0.95),
                    "buckets": buckets,
                })
            else:
                series.append({"labels": labels, "value": child.value})
        return {
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": series,
        }


class MetricsRegistry:
    """Process-wide registry of metric families plus pull collectors.

    Thread-safe: family creation is guarded by the registry lock, every
    series mutation by its family lock. Enable one as the process default
    with :func:`repro.obs.enable` (or swap it in with
    :func:`repro.obs.set_registry`).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, MetricFamily] = {}
        # Weak callbacks: a registry must never keep a closed pool or a
        # finished engine alive just to read its gauges.
        self._collectors: List[object] = []

    # -------------------------------------------------------------- families
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help=help, label_names=labels, buckets=buckets
                )
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is already registered as a {family.kind}, "
                f"not a {kind}"
            )
        if family.label_names != tuple(labels):
            raise ConfigurationError(
                f"metric {name!r} is already registered with labels "
                f"{family.label_names}, not {tuple(labels)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """A monotonically-increasing counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        """A set/inc/dec gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        """A fixed-bucket histogram family (default: log-scale seconds)."""
        return self._family(name, "histogram", help, labels, buckets=buckets)

    # ------------------------------------------------------------ collectors
    def register_collector(self, callback: Callable[[], None]) -> None:
        """Register a pull callback run before every snapshot/render.

        Bound methods are held via :class:`weakref.WeakMethod`; plain
        callables by strong reference. Dead callbacks are pruned silently.
        """
        entry = (
            weakref.WeakMethod(callback)
            if hasattr(callback, "__self__")
            else callback
        )
        with self._lock:
            self._collectors.append(entry)

    def collect(self) -> None:
        """Run every live collector (cold path; snapshot/render call this)."""
        with self._lock:
            collectors = list(self._collectors)
        dead: List[object] = []
        for entry in collectors:
            callback = entry() if isinstance(entry, weakref.WeakMethod) else entry
            if callback is None:
                dead.append(entry)
                continue
            callback()
        if dead:
            with self._lock:
                self._collectors = [
                    entry for entry in self._collectors if entry not in dead
                ]

    # ------------------------------------------------------------- exporters
    def snapshot(self) -> Dict[str, object]:
        """Structured JSON-able snapshot of every family and series."""
        self.collect()
        with self._lock:
            families = dict(self._families)
        return {
            "enabled": True,
            "metrics": {
                name: families[name].snapshot_entry() for name in sorted(families)
            },
        }

    def render_prometheus(self) -> str:
        """The registry's state in Prometheus text exposition format."""
        from .prometheus import render_snapshot

        return render_snapshot(self.snapshot())


class NullRegistry:
    """The disabled registry: every instrument is the shared no-op object."""

    enabled = False

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        return NULL_INSTRUMENT

    def register_collector(self, callback: Callable[[], None]) -> None:
        pass

    def collect(self) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"enabled": False, "metrics": {}}

    def render_prometheus(self) -> str:
        return "# repro.obs: metrics disabled (NullRegistry)\n"


def summarize_snapshot(snapshot: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Compact human-facing digest of a :meth:`MetricsRegistry.snapshot`.

    Used by ``repro stats`` and ``DarwinEngine.describe_checkpoint`` to
    answer "what has this engine done" without dumping every series:
    questions asked (yes/no), classifier retrains, per-phase latency
    (count / mean / p50 / p95 in ms), and cache hit ratios. Returns ``{}``
    for a missing or disabled snapshot.
    """
    if not snapshot or not snapshot.get("enabled"):
        return {}
    metrics = snapshot.get("metrics", {})
    if not isinstance(metrics, dict):
        return {}
    summary: Dict[str, object] = {}

    def _series(name: str):
        family = metrics.get(name)
        if not isinstance(family, dict):
            return []
        return family.get("series", [])

    def _total(name: str, **match: str) -> float:
        total = 0.0
        for entry in _series(name):
            labels = entry.get("labels", {})
            if all(labels.get(k) == v for k, v in match.items()):
                total += float(entry.get("value", 0.0))
        return total

    questions = _series("darwin_questions_total")
    if questions:
        yes = _total("darwin_questions_total", answer="yes")
        no = _total("darwin_questions_total", answer="no")
        summary["questions"] = {"yes": yes, "no": no, "total": yes + no}
    retrains = _series("darwin_retrains_total")
    if retrains:
        summary["retrains"] = _total("darwin_retrains_total")
    phases: Dict[str, object] = {}
    for entry in _series("darwin_phase_seconds"):
        phase = entry.get("labels", {}).get("phase", "")
        phases[phase] = {
            "count": entry.get("count", 0),
            "mean_ms": 1000.0 * float(entry.get("mean", 0.0)),
            "p50_ms": 1000.0 * float(entry.get("p50", 0.0)),
            "p95_ms": 1000.0 * float(entry.get("p95", 0.0)),
        }
    if phases:
        summary["phases"] = phases
    for block, hits_name, misses_name in (
        ("feature_cache", "feature_cache_hits", "feature_cache_misses"),
        ("bitset_cache", "coverage_bitset_hits", "coverage_bitset_misses"),
    ):
        hits, misses = _total(hits_name), _total(misses_name)
        if hits or misses:
            summary[block] = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            }
    commits = _series("crowd_commits_total")
    if commits:
        summary["crowd_commits"] = {
            "accept": _total("crowd_commits_total", outcome="accept"),
            "reject": _total("crowd_commits_total", outcome="reject"),
        }
    requests = _series("gateway_requests_total")
    if requests:
        total = _total("gateway_requests_total")
        rejected = sum(
            float(entry.get("value", 0.0))
            for entry in _series("gateway_rejected_total")
        )
        errors = sum(
            float(entry.get("value", 0.0))
            for entry in requests
            if str(entry.get("labels", {}).get("status", "")).startswith("5")
        )
        summary["gateway"] = {
            "requests": total,
            "rejected": rejected,
            "errors_5xx": errors,
            "by_route": _label_totals(requests, "route"),
        }
    return summary


def _label_totals(series, label: str) -> Dict[str, float]:
    """Series values summed per value of one label (snapshot digests)."""
    totals: Dict[str, float] = {}
    for entry in series:
        key = str(entry.get("labels", {}).get(label, ""))
        totals[key] = totals.get(key, 0.0) + float(entry.get("value", 0.0))
    return totals
