"""Prometheus text exposition: renderer over snapshots, plus a minimal parser.

Rendering works from the :meth:`MetricsRegistry.snapshot` dict rather than
live registry objects, so the same function serves three callers: the live
``render_prometheus()`` exporter, ``repro stats --format prometheus`` over a
snapshot file, and the future gateway's ``/metrics`` handler.

The parser is deliberately small — ``# HELP`` / ``# TYPE`` comments, samples
with optional labels, histogram ``_bucket``/``_sum``/``_count`` suffixes —
and strict about what it does accept: tests and the CI ``obs-smoke`` step
round-trip the renderer through it, so a malformed exposition fails loudly
instead of being waved through.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return f"{float(value):g}"


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_snapshot(snapshot: Dict[str, object]) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    if not snapshot.get("enabled"):
        return "# repro.obs: metrics disabled (NullRegistry)\n"
    lines: List[str] = []
    metrics = snapshot.get("metrics", {})
    assert isinstance(metrics, dict)
    for name in sorted(metrics):
        family = metrics[name]
        kind = family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(str(family['help']))}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series.get("labels", {})
            if kind == "histogram":
                for bound, cumulative in series["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                    label_block = _format_labels(labels, extra=f'le="{le}"')
                    lines.append(f"{name}_bucket{label_block} {cumulative}")
                label_block = _format_labels(labels)
                lines.append(f"{name}_sum{label_block} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{label_block} {series['count']}")
            else:
                label_block = _format_labels(labels)
                lines.append(f"{name}{label_block} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n"


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse a text exposition into ``{family: {type, help, samples}}``.

    ``samples`` maps ``(sample_name, ((label, value), ...))`` — labels sorted
    — to the float sample value. Raises :class:`ValueError` on any line that
    is neither a comment, blank, nor a well-formed sample, and on samples
    whose family was never declared with ``# TYPE``.
    """
    families: Dict[str, Dict[str, object]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                families[parts[2]] = {"type": parts[3], "help": "", "samples": {}}
            elif len(parts) >= 3 and parts[1] == "HELP":
                family = families.setdefault(
                    parts[2], {"type": "untyped", "help": "", "samples": {}}
                )
                family["help"] = parts[3] if len(parts) == 4 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        sample_name = match.group("name")
        label_text = match.group("labels") or ""
        labels: List[Tuple[str, str]] = []
        if label_text:
            consumed = 0
            for label_match in _LABEL_RE.finditer(label_text):
                labels.append(
                    (label_match.group(1), _unescape_label(label_match.group(2)))
                )
                consumed = label_match.end()
            remainder = label_text[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"line {lineno}: malformed labels {label_text!r}")
        value_text = match.group("value")
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: malformed value {value_text!r}"
                ) from exc
        family_name = _family_of(sample_name, families)
        if family_name is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE declaration"
            )
        samples = families[family_name]["samples"]
        assert isinstance(samples, dict)
        samples[(sample_name, tuple(sorted(labels)))] = value
    return families


def _family_of(
    sample_name: str, families: Dict[str, Dict[str, object]]
) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
            return sample_name[: -len(suffix)]
    return None
