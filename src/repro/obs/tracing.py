"""Lightweight span tracing: nested wall-time spans with attached counters.

``trace("darwin.propose", tenant="acme")`` opens a span; spans nest through a
:class:`contextvars.ContextVar`, so concurrent ``asyncio`` tasks (one per
tenant in ``serve_tenants``) each thread their own parent chain without any
cross-talk. Finished root spans land in a bounded ring buffer (old traces
fall off; a long serve session never grows without bound) and dump to JSON
alongside the metrics snapshot.

Like the metrics side, the process default is a :class:`NullTracer` whose
``trace`` returns one shared no-op context manager — the disabled path costs
two method calls and allocates nothing.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional


class Span:
    """One timed operation: name, attributes, children, ad-hoc counters."""

    __slots__ = ("name", "attrs", "started_at", "duration_s", "children",
                 "counters", "_t0")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        # repro: allow[RPR001] span timestamps are telemetry, never replayed
        self.started_at = time.time()
        self.duration_s = 0.0
        self.children: List["Span"] = []
        self.counters: Dict[str, float] = {}
        self._t0 = 0.0

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span (e.g. the chosen rule)."""
        self.attrs.update(attrs)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a per-span counter (e.g. candidates scanned)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def as_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": 1000.0 * self.duration_s,
        }
        if self.attrs:
            entry["attrs"] = {k: v for k, v in self.attrs.items()}
        if self.counters:
            entry["counters"] = dict(self.counters)
        if self.children:
            entry["children"] = [child.as_dict() for child in self.children]
        return entry


class _ActiveSpan:
    """Context manager binding one Span into the tracer's context chain."""

    __slots__ = ("_tracer", "span", "_parent", "_token")

    def __init__(self, tracer: "SpanTracer", name: str,
                 attrs: Dict[str, object]) -> None:
        self._tracer = tracer
        self.span = Span(name, attrs)
        self._parent: Optional[Span] = None
        self._token = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        self._parent = tracer._current.get()
        self._token = tracer._current.set(self.span)
        self.span._t0 = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration_s = time.perf_counter() - span._t0
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._current.reset(self._token)
        # A child may finish after its parent (tasks overlap); appending under
        # the tracer lock keeps the tree consistent either way.
        with self._tracer._lock:
            if self._parent is not None:
                self._parent.children.append(span)
            else:
                self._tracer._roots.append(span)
        return False


class _NullSpanHandle:
    """Shared no-op span + context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        pass

    def count(self, name: str, amount: float = 1.0) -> None:
        pass


NULL_SPAN = _NullSpanHandle()


class SpanTracer:
    """Collects nested spans; retains the most recent root spans.

    ``max_spans`` bounds the ring buffer of *root* spans (children live under
    their root and are retained or dropped with it).
    """

    enabled = True

    def __init__(self, max_spans: int = 256) -> None:
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        self._lock = threading.Lock()
        self._roots: deque = deque(maxlen=max_spans)

    def trace(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a span; use as ``with tracer.trace("x", tenant=t) as span:``."""
        return _ActiveSpan(self, name, dict(attrs))

    def spans(self) -> List[Dict[str, object]]:
        """Finished root spans, oldest first, as JSON-able dicts."""
        with self._lock:
            roots = list(self._roots)
        return [root.as_dict() for root in roots]

    def dump_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.spans(), indent=indent)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


class NullTracer:
    """The disabled tracer: ``trace`` hands back one shared no-op span."""

    enabled = False

    def trace(self, name: str, **attrs: object) -> _NullSpanHandle:
        return NULL_SPAN

    def spans(self) -> List[Dict[str, object]]:
        return []

    def dump_json(self, indent: Optional[int] = None) -> str:
        return "[]"

    def clear(self) -> None:
        pass
