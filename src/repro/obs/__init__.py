"""`repro.obs` — unified metrics + span-tracing telemetry layer.

One process-wide :class:`MetricsRegistry` (counters / gauges / histograms
with labeled series) and one :class:`SpanTracer` (nested wall-time spans),
both defaulting to no-op null implementations so un-instrumented runs pay a
single attribute call per metric site. Exporters: Prometheus text exposition
(:meth:`MetricsRegistry.render_prometheus`) and a structured JSON snapshot
(:meth:`MetricsRegistry.snapshot`, written by ``--metrics-out`` and embedded
in checkpoint manifests).

Typical use::

    from repro import obs

    registry = obs.enable()          # swap in live registry + tracer
    engine = DarwinEngine.from_config(...)   # instruments bind at build time
    engine.run(oracle, budget=50)
    obs.write_snapshot("metrics.json")

Components resolve their instruments at construction time, so call
:func:`enable` *before* building engines/pools you want instrumented.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    NULL_INSTRUMENT,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    summarize_snapshot,
)
from .prometheus import parse_prometheus_text, render_snapshot
from .tracing import NULL_SPAN, NullTracer, Span, SpanTracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "SpanTracer",
    "enable",
    "disable",
    "get_registry",
    "get_tracer",
    "parse_prometheus_text",
    "read_snapshot",
    "render_snapshot",
    "set_registry",
    "set_tracer",
    "summarize_snapshot",
    "trace",
    "write_snapshot",
]

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()

_registry: Union[MetricsRegistry, NullRegistry] = _NULL_REGISTRY
_tracer: Union[SpanTracer, NullTracer] = _NULL_TRACER


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide registry (a no-op :class:`NullRegistry` by default)."""
    return _registry


def set_registry(
    registry: Union[MetricsRegistry, NullRegistry],
) -> Union[MetricsRegistry, NullRegistry]:
    """Swap the process-wide registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_tracer() -> Union[SpanTracer, NullTracer]:
    """The process-wide tracer (a no-op :class:`NullTracer` by default)."""
    return _tracer


def set_tracer(
    tracer: Union[SpanTracer, NullTracer],
) -> Union[SpanTracer, NullTracer]:
    """Swap the process-wide tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def trace(name: str, **attrs: object):
    """Open a span on the process-wide tracer (no-op when disabled)."""
    return _tracer.trace(name, **attrs)


def enable(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> MetricsRegistry:
    """Install a live registry + tracer as the process defaults.

    Idempotent-friendly: passing nothing creates fresh instances. Returns
    the installed registry. Call before constructing the components you
    want instrumented (they bind their instruments in ``__init__``).
    """
    live_registry = registry if registry is not None else MetricsRegistry()
    live_tracer = tracer if tracer is not None else SpanTracer()
    set_registry(live_registry)
    set_tracer(live_tracer)
    return live_registry


def disable() -> None:
    """Restore the no-op defaults (used by tests to undo :func:`enable`)."""
    set_registry(_NULL_REGISTRY)
    set_tracer(_NULL_TRACER)


SNAPSHOT_KIND = "repro.obs.snapshot"


def write_snapshot(path: Union[str, Path]) -> Path:
    """Write the current metrics snapshot + retained spans to a JSON file."""
    path = Path(path)
    payload = {
        "kind": SNAPSHOT_KIND,
        "version": 1,
        "metrics": _registry.snapshot(),
        "spans": _tracer.spans(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def read_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a ``write_snapshot`` file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("kind") != SNAPSHOT_KIND:
        raise ValueError(f"{path} is not a repro.obs snapshot file")
    return payload
