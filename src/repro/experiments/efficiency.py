"""Section 4.5 "Efficiency in Label Collection": wall-clock breakdown.

The paper reports index construction under 5 minutes, hierarchy generation
under 15 minutes for 100K sentences, and traversal dominated by classifier
scoring. The reproduction cannot match those absolute numbers (different
hardware, pure Python), so this experiment records the same *breakdown*
(index build / hierarchy generation / traversal / score update) across corpus
sizes and checks that index construction grows roughly linearly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import DarwinConfig
from ..evaluation.runner import ExperimentResult
from .common import prepare_dataset


def efficiency_experiment(
    dataset: str = "directions",
    scales: Sequence[float] = (0.05, 0.1, 0.2),
    budget: int = 30,
    seed: int = 0,
    config: Optional[DarwinConfig] = None,
) -> ExperimentResult:
    """Measure Darwin's wall-clock breakdown at several corpus sizes.

    Returns:
        An :class:`ExperimentResult` whose series are per-phase timings (in
        seconds) indexed by the corpus sizes listed in the metadata.
    """
    sizes: List[int] = []
    phases = ("index_build", "embeddings", "initial_training",
              "hierarchy_generation", "traversal", "score_update")
    timings: Dict[str, List[float]] = {phase: [] for phase in phases}

    for scale in scales:
        setting = prepare_dataset(dataset, scale=scale, seed=seed, config=config)
        sizes.append(len(setting.corpus))
        # At very small scales the dataset's default seed rule may not match
        # anything; fall back to a couple of ground-truth positives as seeds.
        seed_phrase = tuple(setting.seed_rule_texts[0].lower().split())
        has_seed_coverage = any(
            s.contains_phrase(seed_phrase) for s in setting.corpus
        )
        if has_seed_coverage:
            run = setting.run_darwin(traversal="hybrid", budget=budget)
        else:
            seed_positives = sorted(setting.corpus.positive_ids())[:3]
            run = setting.run_darwin(
                traversal="hybrid", budget=budget, seed_positive_ids=seed_positives
            )
        for phase in phases:
            timings[phase].append(run.timings.get(phase, {}).get("total", 0.0))
        # Index/embedding time is recorded by the Darwin constructor only when
        # it builds them itself; prepare_dataset pre-builds them, so measure
        # separately through a fresh Darwin without the shared artifacts.
        if run.timings.get("index_build", {}).get("total", 0.0) == 0.0:
            from ..core.darwin import Darwin

            fresh = Darwin(setting.corpus, grammars=setting.grammars,
                           config=setting.config)
            timings["index_build"][-1] = fresh.stopwatch.total("index_build")
            timings["embeddings"][-1] = fresh.stopwatch.total("embeddings")

    result = ExperimentResult(
        name=f"efficiency-{dataset}",
        metadata={"dataset": dataset, "corpus_sizes": sizes, "budget": budget},
    )
    for phase in phases:
        result.add_series(phase, timings[phase])
    return result
