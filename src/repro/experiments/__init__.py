"""Experiment drivers regenerating every table and figure of the evaluation.

Each module corresponds to one experiment of Section 4 (see DESIGN.md's
per-experiment index). All drivers accept a ``scale`` parameter so the same
code runs both quickly in the benchmark harness and at paper scale.
"""

from .common import ExperimentSetting, prepare_dataset
from .dataset_stats import table1
from .seed_size import seed_size_experiment
from .coverage_curves import coverage_experiment
from .fscore_curves import fscore_experiment
from .snorkel_table import snorkel_experiment
from .sensitivity import (
    candidate_sweep,
    epoch_sweep,
    seed_rule_sweep,
    tau_sweep,
)
from .efficiency import efficiency_experiment
from .annotators import annotator_experiment
from .traversal_traces import traversal_trace_experiment

__all__ = [
    "ExperimentSetting",
    "prepare_dataset",
    "table1",
    "seed_size_experiment",
    "coverage_experiment",
    "fscore_experiment",
    "snorkel_experiment",
    "tau_sweep",
    "seed_rule_sweep",
    "candidate_sweep",
    "epoch_sweep",
    "efficiency_experiment",
    "annotator_experiment",
    "traversal_trace_experiment",
]
