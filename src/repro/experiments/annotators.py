"""Section 4.5 "Performance of human annotators".

The paper collected crowd labels for rule-verification questions on the
directions dataset: annotators see 5 matching sentences per rule, make ~10
false-positive judgements out of 69 accepted rules, and a majority vote over
3 workers keeps Darwin's coverage close to the perfect-oracle run. This
experiment simulates that setup with the sample-based + noisy oracle stack and
reports the same quantities.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.oracle import GroundTruthOracle, MajorityVoteOracle, SampleBasedOracle
from ..evaluation.runner import ExperimentResult
from .common import ExperimentSetting


def annotator_experiment(
    setting: ExperimentSetting,
    budget: int = 60,
    flip_prob: float = 0.1,
    num_annotators: int = 3,
    seed_rule_texts: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Compare Darwin under a perfect oracle vs. simulated crowd annotators.

    Returns:
        An :class:`ExperimentResult` with the recall curves under each oracle
        and, in the metadata, the number of imprecise rules each oracle
        accepted (the paper's "false positive responses").
    """
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    truth_positives = setting.corpus.positive_ids()
    threshold = setting.config.oracle_precision_threshold

    oracles = {
        "perfect oracle": GroundTruthOracle(setting.corpus, precision_threshold=threshold),
        "single annotator": SampleBasedOracle(
            setting.corpus, precision_threshold=threshold,
            label_noise=flip_prob, seed=1,
        ),
        "crowd (majority of 3)": MajorityVoteOracle(
            [
                SampleBasedOracle(
                    setting.corpus, precision_threshold=threshold,
                    label_noise=flip_prob, seed=10 + i,
                )
                for i in range(num_annotators)
            ]
        ),
    }

    result = ExperimentResult(
        name=f"annotators-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "budget": budget,
            "flip_prob": flip_prob,
            "num_annotators": num_annotators,
        },
    )
    accepted_imprecise: Dict[str, int] = {}
    accepted_total: Dict[str, int] = {}

    for label, oracle in oracles.items():
        darwin = setting.make_darwin(
            setting.config.with_overrides(budget=budget, traversal="hybrid")
        )
        run = darwin.run(oracle, seed_rule_texts=seeds, budget=budget)
        result.add_series(label, run.recall_curve())
        imprecise = 0
        for rule in run.rule_set.rules:
            if rule.precision(truth_positives) < threshold:
                imprecise += 1
        accepted_imprecise[label] = imprecise
        accepted_total[label] = len(run.rule_set)

    result.metadata["accepted_rules"] = accepted_total
    result.metadata["imprecise_accepted_rules"] = accepted_imprecise
    return result
