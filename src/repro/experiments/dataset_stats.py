"""Table 1: dataset statistics of the generated corpora."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..datasets.registry import table1_rows
from ..evaluation.reporting import format_table


def table1(
    scale: float = 0.1, seed: int = 0, names: Optional[Sequence[str]] = None
) -> List[dict]:
    """Regenerate Table 1 rows for the synthetic corpora.

    Returns one dict per dataset with both the generated statistics and the
    paper's reported numbers so the bench output can show them side by side.
    """
    return table1_rows(scale=scale, seed=seed, names=names)


def format_table1(rows: List[dict]) -> str:
    """Render Table 1 in the same layout the paper uses."""
    return format_table(
        headers=[
            "dataset", "task", "#sentences", "%positives",
            "paper #sentences", "paper %positives",
        ],
        rows=[
            [
                row["dataset"],
                row["task"],
                row["num_sentences"],
                100.0 * float(row["positive_fraction"]),
                row["paper_num_sentences"],
                100.0 * float(row["paper_positive_fraction"]),
            ]
            for row in rows
        ],
        title="Table 1: dataset statistics (generated vs. paper)",
    )
