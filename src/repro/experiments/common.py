"""Shared plumbing for the experiment drivers.

Every experiment needs the same ingredients: a generated corpus, a corpus
index, a fitted featurizer (all reusable across runs on the same dataset), the
dataset's default seed rule and keyword hints, and a ground-truth oracle.
:class:`ExperimentSetting` bundles them so individual drivers stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..classifier.features import SentenceFeaturizer
from ..config import DarwinConfig
from ..core.darwin import Darwin, DarwinResult
from ..core.oracle import GroundTruthOracle, Oracle
from ..datasets.registry import load_bank, load_dataset
from ..grammars.base import HeuristicGrammar
from ..grammars.tokensregex import TokensRegexGrammar
from ..index.trie_index import CorpusIndex
from ..text.corpus import Corpus

DEFAULT_EXPERIMENT_SCALE = 0.12
"""Default dataset scale for experiments (keeps full sweeps laptop-fast)."""


@dataclass
class ExperimentSetting:
    """Everything needed to run Darwin and the baselines on one dataset.

    Attributes:
        dataset: Dataset name.
        corpus: The generated labeled corpus.
        index: Corpus index shared across runs (built once, as in the paper).
        featurizer: Fitted sentence featurizer shared across runs.
        config: Base Darwin configuration.
        seed_rule_texts: The dataset's default seed rule(s).
        keyword_hints: Keywords for the KS baseline.
        biased_exclude_token: Token excluded in the biased-seed experiment.
    """

    dataset: str
    corpus: Corpus
    index: CorpusIndex
    featurizer: SentenceFeaturizer
    config: DarwinConfig
    seed_rule_texts: Sequence[str]
    keyword_hints: Sequence[str]
    biased_exclude_token: str
    grammars: Sequence[HeuristicGrammar] = field(default_factory=list)

    def make_darwin(self, config: Optional[DarwinConfig] = None) -> Darwin:
        """A Darwin instance reusing the shared index / featurizer."""
        return Darwin(
            self.corpus,
            grammars=self.grammars or None,
            config=config or self.config,
            index=self.index,
            featurizer=self.featurizer,
        )

    def make_oracle(self, precision_threshold: Optional[float] = None) -> Oracle:
        """A ground-truth oracle for this corpus."""
        return GroundTruthOracle(
            self.corpus,
            precision_threshold=(
                precision_threshold
                if precision_threshold is not None
                else self.config.oracle_precision_threshold
            ),
        )

    def run_darwin(
        self,
        traversal: str = "hybrid",
        budget: Optional[int] = None,
        seed_rule_texts: Optional[Sequence[str]] = None,
        seed_positive_ids: Optional[Sequence[int]] = None,
        config_overrides: Optional[Dict] = None,
    ) -> DarwinResult:
        """Run Darwin with the given traversal strategy on this setting."""
        overrides = dict(config_overrides or {})
        overrides.setdefault("traversal", traversal)
        if budget is not None:
            overrides.setdefault("budget", budget)
        config = self.config.with_overrides(**overrides)
        darwin = self.make_darwin(config)
        return darwin.run(
            self.make_oracle(),
            seed_rule_texts=(
                seed_rule_texts if seed_rule_texts is not None else self.seed_rule_texts
            )
            if seed_positive_ids is None
            else None,
            seed_positive_ids=seed_positive_ids,
            budget=config.budget,
        )


def prepare_dataset(
    dataset: str,
    scale: float = DEFAULT_EXPERIMENT_SCALE,
    seed: int = 0,
    config: Optional[DarwinConfig] = None,
    parse_trees: bool = False,
    target_intent: str = "food",
    grammars: Optional[Sequence[HeuristicGrammar]] = None,
) -> ExperimentSetting:
    """Generate a dataset and build the shared index / featurizer.

    Args:
        dataset: One of the five dataset names.
        scale: Fraction of the dataset's default size to generate.
        seed: RNG seed for generation.
        config: Base Darwin config (a sensible experiment default otherwise).
        parse_trees: Build dependency trees (only needed for TreeMatch runs).
        target_intent: Intent used as the positive class for the tweets data.
        grammars: Grammars to index (default: TokensRegex only).
    """
    config = config or DarwinConfig(
        budget=100,
        num_candidates=1500,
        min_coverage=2,
    )
    corpus = load_dataset(
        dataset, scale=scale, seed=seed, parse_trees=parse_trees,
        target_intent=target_intent,
    )
    bank = load_bank(dataset, target_intent=target_intent)
    grammar_list: List[HeuristicGrammar] = list(
        grammars or [TokensRegexGrammar(max_phrase_len=config.max_phrase_len)]
    )
    index = CorpusIndex.build(
        corpus,
        grammar_list,
        max_depth=config.max_sketch_depth,
        min_coverage=config.min_coverage,
    )
    featurizer = SentenceFeaturizer.fit(
        corpus, embedding_dim=config.classifier.embedding_dim, seed=seed
    )
    return ExperimentSetting(
        dataset=dataset,
        corpus=corpus,
        index=index,
        featurizer=featurizer,
        config=config,
        seed_rule_texts=tuple(bank.default_seed_rules),
        keyword_hints=tuple(bank.keyword_hints),
        biased_exclude_token=bank.biased_exclude_token,
        grammars=grammar_list,
    )
