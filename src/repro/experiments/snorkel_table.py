"""Table 2: F-score of Darwin's labels vs. Darwin + Snorkel-style de-noising.

Darwin's accepted rules are turned into a label matrix; one end classifier is
trained on the raw (majority-vote) weak labels, another on the labels produced
by the generative label model. Both are evaluated against ground truth.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..labeling.pipeline import WeakSupervisionPipeline
from ..evaluation.runner import ExperimentResult
from .common import ExperimentSetting


def snorkel_experiment(
    setting: ExperimentSetting,
    budget: int = 100,
    seed_rule_texts: Optional[Sequence[str]] = None,
    config_overrides: Optional[Dict] = None,
) -> ExperimentResult:
    """Run the Table 2 comparison for one dataset.

    Returns:
        An :class:`ExperimentResult` with single-value series "Darwin" and
        "Darwin+Snorkel" (end-classifier F1), plus the label-level F1s in the
        metadata.
    """
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    darwin_run = setting.run_darwin(
        traversal="hybrid",
        budget=budget,
        seed_rule_texts=seeds,
        config_overrides=config_overrides,
    )

    pipeline = WeakSupervisionPipeline(
        setting.corpus,
        featurizer=setting.featurizer,
        classifier_config=setting.config.classifier,
    )
    direct = pipeline.train_end_classifier(darwin_run.rule_set, use_label_model=False)
    denoised = pipeline.train_end_classifier(darwin_run.rule_set, use_label_model=True)

    result = ExperimentResult(
        name=f"table2-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "budget": budget,
            "num_rules": len(darwin_run.rule_set),
            "rule_coverage_recall": darwin_run.final_recall,
            "darwin_label_f1": direct.label_f1,
            "snorkel_label_f1": denoised.label_f1,
        },
    )
    result.add_series("Darwin", [direct.f1])
    result.add_series("Darwin+Snorkel", [denoised.f1])
    return result
