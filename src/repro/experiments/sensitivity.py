"""Appendix D sensitivity studies (Figures 12, 13, 14).

* :func:`tau_sweep` — HybridSearch switching threshold τ (Figure 12a),
* :func:`seed_rule_sweep` — robustness to different seed rules (Figure 12b),
* :func:`candidate_sweep` — number of generated candidates (Figure 13),
* :func:`epoch_sweep` — classifier epochs vs. #questions to reach a target
  coverage (Figure 14).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..evaluation.runner import ExperimentResult
from .common import ExperimentSetting


def tau_sweep(
    setting: ExperimentSetting,
    taus: Sequence[int] = (3, 5, 7, 9),
    budget: int = 100,
    seed_rule_texts: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Coverage curves of Darwin(HS) for different switching thresholds τ."""
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    result = ExperimentResult(
        name=f"fig12a-tau-{setting.dataset}",
        metadata={"dataset": setting.dataset, "budget": budget, "taus": list(taus)},
    )
    for tau in taus:
        run = setting.run_darwin(
            traversal="hybrid",
            budget=budget,
            seed_rule_texts=seeds,
            config_overrides={"tau": tau},
        )
        result.add_series(f"tau={tau}", run.recall_curve())
    return result


def seed_rule_sweep(
    setting: ExperimentSetting,
    seed_rules: Sequence[str],
    budget: int = 100,
) -> ExperimentResult:
    """Coverage curves of Darwin(HS) for different seed rules (Figure 12b).

    Seed rules may be keywords ("composer"), phrases ("piano"), or whole
    sentences; sentences are used as seed positive instances rather than
    rules, mirroring the paper's Rule 3.
    """
    result = ExperimentResult(
        name=f"fig12b-seeds-{setting.dataset}",
        metadata={"dataset": setting.dataset, "budget": budget,
                  "seed_rules": list(seed_rules)},
    )
    for position, seed_rule in enumerate(seed_rules, start=1):
        tokens = seed_rule.split()
        if len(tokens) > setting.config.max_phrase_len:
            # Treat long seeds as seed sentences: their positives are the
            # sentences containing the full phrase.
            matching = [
                s.sentence_id
                for s in setting.corpus
                if s.contains_phrase(tuple(t.lower() for t in tokens))
            ]
            run = setting.run_darwin(
                traversal="hybrid", budget=budget, seed_positive_ids=matching or None,
                seed_rule_texts=None if matching else (seed_rule,),
            )
        else:
            run = setting.run_darwin(
                traversal="hybrid", budget=budget, seed_rule_texts=(seed_rule,)
            )
        result.add_series(f"Rule {position}", run.recall_curve())
    return result


def candidate_sweep(
    setting: ExperimentSetting,
    candidate_counts: Sequence[int] = (500, 1000, 2000),
    budget: int = 100,
    seed_rule_texts: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Coverage curves for different candidate-pool sizes (Figure 13)."""
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    result = ExperimentResult(
        name=f"fig13-candidates-{setting.dataset}",
        metadata={"dataset": setting.dataset, "budget": budget,
                  "candidate_counts": list(candidate_counts)},
    )
    for count in candidate_counts:
        run = setting.run_darwin(
            traversal="hybrid",
            budget=budget,
            seed_rule_texts=seeds,
            config_overrides={"num_candidates": count},
        )
        label = f"{count // 1000}K" if count >= 1000 else str(count)
        result.add_series(label, run.recall_curve())
    return result


def epoch_sweep(
    setting: ExperimentSetting,
    epochs: Sequence[int] = (4, 6, 8, 10, 12),
    budget: int = 100,
    target_coverage: float = 0.75,
    seed_rule_texts: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Questions needed to reach ``target_coverage`` vs. classifier epochs.

    Figure 14 reports, for each number of training epochs, how many oracle
    questions Darwin(HS) needs to label at least 75% of the positives; the
    paper's point is that the pipeline is robust to classifier over/under
    fitting.
    """
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    questions_needed: List[float] = []
    for epoch_count in epochs:
        run = setting.run_darwin(
            traversal="hybrid",
            budget=budget,
            seed_rule_texts=seeds,
            config_overrides={"classifier": {"epochs": int(epoch_count)}},
        )
        reached = budget
        for record in run.history:
            if record.recall >= target_coverage:
                reached = record.question_number
                break
        questions_needed.append(float(reached))
    result = ExperimentResult(
        name=f"fig14-epochs-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "budget": budget,
            "target_coverage": target_coverage,
            "epochs": list(epochs),
        },
    )
    result.add_series("questions_to_target", questions_needed)
    return result
