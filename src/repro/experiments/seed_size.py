"""Figures 7 and 8: coverage vs. seed-set size, Snuba vs. Darwin(HS).

Both systems receive the *same* randomly chosen labeled subset. Snuba uses it
to synthesize heuristics directly; Darwin uses only the positive sentences in
it as seeds and then spends its oracle budget. Figure 8 repeats the experiment
with a *biased* sample: sentences containing a characteristic token (e.g.
"shuttle" for directions, "composer" for musicians) are excluded from the
sample pool, so Snuba can never learn rules for that mode while Darwin can
still discover them through the classifier's generalization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.snuba import SnubaBaseline
from ..evaluation.metrics import coverage_recall
from ..evaluation.runner import ExperimentResult
from ..utils.rng import derive_rng
from .common import ExperimentSetting


def sample_labeled_subset(
    setting: ExperimentSetting,
    size: int,
    seed: int,
    biased: bool = False,
    min_positives: int = 2,
) -> List[int]:
    """Sample a labeled subset of ``size`` sentence ids.

    The sample is stratified just enough to contain ``min_positives`` positive
    sentences (otherwise neither system can start, and the paper's comparison
    presumes the seed yields at least a couple of positives). With
    ``biased=True``, sentences containing the dataset's characteristic token
    are excluded from the pool (Figure 8).
    """
    corpus = setting.corpus
    rng = derive_rng(seed, "seed-subset", setting.dataset, size, biased)
    exclude_token = setting.biased_exclude_token if biased else None

    def eligible(sentence) -> bool:
        if exclude_token and exclude_token in sentence.tokens:
            return False
        return True

    positives = [s.sentence_id for s in corpus if s.label and eligible(s)]
    others = [s.sentence_id for s in corpus if not s.label and eligible(s)]
    rng.shuffle(positives)
    rng.shuffle(others)

    guaranteed = positives[: min(min_positives, len(positives), size)]
    remaining_pool = [i for i in positives[len(guaranteed):]] + others
    rng.shuffle(remaining_pool)
    sample = list(guaranteed) + remaining_pool[: max(0, size - len(guaranteed))]
    return sorted(sample[:size])


def seed_size_experiment(
    setting: ExperimentSetting,
    seed_sizes: Sequence[int] = (25, 50, 125, 250, 500, 1000),
    budget: int = 100,
    biased: bool = False,
    trials: int = 1,
    base_seed: int = 0,
    snuba_kwargs: Optional[Dict] = None,
) -> ExperimentResult:
    """Run the Figure 7 (or Figure 8 when ``biased``) comparison.

    Returns:
        An :class:`ExperimentResult` whose series map "Snuba" and
        "Darwin(HS)" to the fraction of positives identified at each seed size.
    """
    truth = setting.corpus.positive_ids()
    snuba_curve: List[float] = []
    darwin_curve: List[float] = []

    for size in seed_sizes:
        snuba_values = []
        darwin_values = []
        for trial in range(trials):
            subset = sample_labeled_subset(
                setting, size, seed=base_seed + trial, biased=biased
            )
            labels = {i: bool(setting.corpus[i].label) for i in subset}

            snuba = SnubaBaseline(setting.corpus, **(snuba_kwargs or {}))
            snuba_result = snuba.run(subset, labels=labels)
            snuba_values.append(snuba_result.coverage)

            seed_positives = [i for i in subset if labels[i]]
            darwin_result = setting.run_darwin(
                traversal="hybrid",
                budget=budget,
                seed_positive_ids=seed_positives,
            )
            darwin_values.append(coverage_recall(darwin_result.covered_ids, truth))
        snuba_curve.append(sum(snuba_values) / len(snuba_values))
        darwin_curve.append(sum(darwin_values) / len(darwin_values))

    result = ExperimentResult(
        name=f"{'fig8' if biased else 'fig7'}-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "seed_sizes": list(seed_sizes),
            "budget": budget,
            "biased": biased,
            "num_positives": len(truth),
        },
    )
    result.add_series("Snuba", snuba_curve)
    result.add_series("Darwin(HS)", darwin_curve)
    return result
