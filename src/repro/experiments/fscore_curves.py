"""Figures 9(e-h) and 10(b): classifier F-score vs. number of questions.

Compares the classifier trained on Darwin(HS)'s labels against Active
Learning, Keyword Sampling and HighP, with every technique using the same
classifier family and the same per-question budget.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..baselines.active_learning import ActiveLearningBaseline
from ..baselines.keyword_sampling import KeywordSamplingBaseline
from ..baselines.rule_baselines import HighPrecisionBaseline
from ..evaluation.runner import ExperimentResult
from .common import ExperimentSetting

DEFAULT_METHODS = ("Darwin(HS)", "AL", "KS", "highP")


def fscore_experiment(
    setting: ExperimentSetting,
    budget: int = 100,
    methods: Sequence[str] = DEFAULT_METHODS,
    seed_rule_texts: Optional[Sequence[str]] = None,
    config_overrides: Optional[Dict] = None,
) -> ExperimentResult:
    """Run the classifier-quality comparison on one dataset.

    Returns:
        An :class:`ExperimentResult` mapping each method to its F1 curve.
    """
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    result = ExperimentResult(
        name=f"fig9-fscore-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "budget": budget,
            "seed_rules": list(seeds),
        },
    )

    for method in methods:
        if method == "Darwin(HS)":
            run = setting.run_darwin(
                traversal="hybrid",
                budget=budget,
                seed_rule_texts=seeds,
                config_overrides=config_overrides,
            )
            result.add_series(method, run.f1_curve())
        elif method == "AL":
            baseline = ActiveLearningBaseline(
                setting.corpus,
                classifier_config=setting.config.classifier,
                featurizer=setting.featurizer,
            )
            run = baseline.run(budget=budget)
            result.add_series(method, run.f1_curve)
        elif method == "KS":
            baseline = KeywordSamplingBaseline(
                setting.corpus,
                keywords=setting.keyword_hints,
                classifier_config=setting.config.classifier,
                featurizer=setting.featurizer,
            )
            run = baseline.run(budget=budget)
            result.add_series(method, run.f1_curve)
        elif method == "highP":
            baseline = HighPrecisionBaseline(
                setting.corpus,
                grammars=setting.grammars,
                config=setting.config.with_overrides(budget=budget),
                index=setting.index,
                featurizer=setting.featurizer,
            )
            run = baseline.run(setting.make_oracle(), seeds, budget=budget)
            result.add_series(method, run.f1_curve)
        else:
            raise ValueError(f"unknown method {method!r}")
    return result
