"""Figure 11: example HybridSearch traversal traces.

The paper illustrates how HybridSearch starts from 'best way to get to' and
reaches the lexically distant rule 'shuttle to' (directions), and how it
generalizes then re-specializes around 'caused by' (cause-effect). This
experiment records the sequence of rules Darwin(HS) queries and which were
accepted, so the bench can print the same kind of trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..evaluation.runner import ExperimentResult
from .common import ExperimentSetting


def traversal_trace_experiment(
    setting: ExperimentSetting,
    budget: int = 40,
    seed_rule_texts: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Record the query trace of a Darwin(HS) run.

    Returns:
        An :class:`ExperimentResult` whose metadata contains the ordered list
        of queried rules with their answers and the accepted-rule trace
        (the Figure 11 content); the single series is the recall curve.
    """
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    run = setting.run_darwin(traversal="hybrid", budget=budget, seed_rule_texts=seeds)

    trace: List[Dict[str, object]] = [
        {
            "question": record.question_number,
            "rule": record.rule,
            "answer": "YES" if record.answer else "NO",
            "coverage": record.rule_coverage,
        }
        for record in run.history
    ]
    accepted = [record.rule for record in run.history if record.answer]

    result = ExperimentResult(
        name=f"fig11-trace-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "seed_rules": list(seeds),
            "trace": trace,
            "accepted_rules": accepted,
        },
    )
    result.add_series("recall", run.recall_curve())
    return result
