"""Figures 9(a-d) and 10(a): rule coverage vs. number of oracle questions.

Compares Darwin's three traversal strategies (HS / US / LS) and the HighP
baseline, all starting from the dataset's single seed rule and the same oracle
budget. The y-axis is the fraction of ground-truth positives contained in the
union coverage ``P`` after each question.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..baselines.rule_baselines import HighPrecisionBaseline
from ..evaluation.runner import ExperimentResult
from .common import ExperimentSetting

DEFAULT_METHODS = ("Darwin(HS)", "Darwin(US)", "Darwin(LS)", "highP")

_TRAVERSAL_OF = {
    "Darwin(HS)": "hybrid",
    "Darwin(US)": "universal",
    "Darwin(LS)": "local",
}


def coverage_experiment(
    setting: ExperimentSetting,
    budget: int = 100,
    methods: Sequence[str] = DEFAULT_METHODS,
    seed_rule_texts: Optional[Sequence[str]] = None,
    config_overrides: Optional[Dict] = None,
) -> ExperimentResult:
    """Run the rule-coverage comparison on one dataset.

    Returns:
        An :class:`ExperimentResult` mapping each method name to its recall
        curve (one value per oracle question).
    """
    seeds = tuple(seed_rule_texts or setting.seed_rule_texts)
    result = ExperimentResult(
        name=f"fig9-coverage-{setting.dataset}",
        metadata={
            "dataset": setting.dataset,
            "budget": budget,
            "seed_rules": list(seeds),
            "num_positives": len(setting.corpus.positive_ids()),
        },
    )

    for method in methods:
        if method in _TRAVERSAL_OF:
            run = setting.run_darwin(
                traversal=_TRAVERSAL_OF[method],
                budget=budget,
                seed_rule_texts=seeds,
                config_overrides=config_overrides,
            )
            result.add_series(method, run.recall_curve())
        elif method == "highP":
            baseline = HighPrecisionBaseline(
                setting.corpus,
                grammars=setting.grammars,
                config=setting.config.with_overrides(budget=budget),
                index=setting.index,
                featurizer=setting.featurizer,
            )
            run = baseline.run(setting.make_oracle(), seeds, budget=budget)
            result.add_series(method, run.recall_curve)
        else:
            raise ValueError(f"unknown method {method!r}")
    return result
